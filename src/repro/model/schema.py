"""Table schemas.

Each transaction type is a relation.  A schema is the ordered list of its
columns; *system-level* columns (``Tid``, ``Ts``, ``Sig``, ``SenID``,
``Tname``) are prepended automatically, *application-level* columns come
from the user's CREATE statement, exactly as described in section III-A of
the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from ..common.codec import Reader, Writer
from ..common.errors import SchemaError
from .types import ColumnType


@dataclasses.dataclass(frozen=True)
class Column:
    """One column: name plus declared type."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


#: System-level columns automatically present on every on-chain table,
#: in storage order.  ``Tid`` is the global transaction sequence number,
#: ``Ts`` the send timestamp (ms), ``Sig`` the sender's Schnorr signature,
#: ``SenID`` the sender address, ``Tname`` the transaction type (= table).
SYSTEM_COLUMNS: tuple[Column, ...] = (
    Column("tid", ColumnType.INT),
    Column("ts", ColumnType.TIMESTAMP),
    Column("sig", ColumnType.BYTES),
    Column("senid", ColumnType.STRING),
    Column("tname", ColumnType.STRING),
)

SYSTEM_COLUMN_NAMES = tuple(col.name for col in SYSTEM_COLUMNS)


@dataclasses.dataclass(frozen=True)
class TableSchema:
    """Schema of one on-chain table (= transaction type)."""

    name: str
    app_columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name {self.name!r}")
        seen = set(SYSTEM_COLUMN_NAMES)
        for col in self.app_columns:
            lowered = col.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"duplicate or reserved column {col.name!r} in table {self.name!r}"
                )
            seen.add(lowered)

    @classmethod
    def create(
        cls, name: str, columns: Iterable[tuple[str, str | ColumnType]]
    ) -> "TableSchema":
        """Build a schema from (name, type) pairs.

        >>> TableSchema.create("donate", [("donor", "string"),
        ...                               ("project", "string"),
        ...                               ("amount", "decimal")])
        ... # doctest: +ELLIPSIS
        TableSchema(...)
        """
        cols = []
        for cname, ctype in columns:
            resolved = (
                ctype if isinstance(ctype, ColumnType) else ColumnType.from_name(ctype)
            )
            cols.append(Column(cname.lower(), resolved))
        return cls(name=name.lower(), app_columns=tuple(cols))

    @property
    def all_columns(self) -> tuple[Column, ...]:
        """System columns followed by application columns."""
        return SYSTEM_COLUMNS + self.app_columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.all_columns)

    def column_index(self, name: str) -> int:
        """Position of ``name`` within :attr:`all_columns`."""
        lowered = name.lower()
        for i, col in enumerate(self.all_columns):
            if col.name == lowered:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_type(self, name: str) -> ColumnType:
        return self.all_columns[self.column_index(name)].ctype

    def has_column(self, name: str) -> bool:
        return name.lower() in self.column_names

    def validate_app_values(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Validate application-level values for an INSERT."""
        if len(values) != len(self.app_columns):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.app_columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            col.ctype.validate(value, col.name)
            for col, value in zip(self.app_columns, values)
        )

    # -- wire format (schemas are synchronized via special transactions) --

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.write_str(self.name)
        writer.write_varint(len(self.app_columns))
        for col in self.app_columns:
            writer.write_str(col.name)
            writer.write_str(col.ctype.value)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "TableSchema":
        reader = Reader(data)
        name = reader.read_str()
        count = reader.read_varint()
        columns = []
        for _ in range(count):
            cname = reader.read_str()
            ctype = ColumnType(reader.read_str())
            columns.append(Column(cname, ctype))
        return cls(name=name, app_columns=tuple(columns))
