"""Relational-on-chain data model: types, schemas, transactions, blocks."""

from .block import GENESIS_PREV_HASH, Block, BlockHeader, iter_table
from .catalog import Catalog
from .genesis import make_genesis, verify_chain
from .schema import SYSTEM_COLUMN_NAMES, SYSTEM_COLUMNS, Column, TableSchema
from .transaction import (
    SCHEMA_TNAME,
    UNASSIGNED_TID,
    Transaction,
    schema_from_sync_transaction,
    schema_sync_transaction,
)
from .types import ColumnType

__all__ = [
    "Block",
    "BlockHeader",
    "Catalog",
    "Column",
    "ColumnType",
    "GENESIS_PREV_HASH",
    "SCHEMA_TNAME",
    "SYSTEM_COLUMNS",
    "SYSTEM_COLUMN_NAMES",
    "TableSchema",
    "Transaction",
    "UNASSIGNED_TID",
    "iter_table",
    "make_genesis",
    "schema_from_sync_transaction",
    "schema_sync_transaction",
    "verify_chain",
]
