"""On-chain transactions.

A transaction is a tuple of a declared table: five system-level attributes
(``tid``, ``ts``, ``sig``, ``senid``, ``tname``) followed by the
application-level values.  The signature covers everything except ``tid``
and ``sig`` itself, because the global transaction id is only assigned when
the ordering service sequences the transaction.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence

from ..common.codec import Reader, Writer
from ..common.errors import SignatureError
from ..common.hashing import sha256
from ..crypto.keys import KeyPair, address_of
from ..crypto.schnorr import verify as schnorr_verify
from .schema import TableSchema

#: ``tid`` value of a transaction that has not been sequenced yet.
UNASSIGNED_TID = -1

#: ``tname`` of the special schema-synchronization transactions
#: (section IV-A: "The system sends a special transaction to synchronize
#: schema among nodes").
SCHEMA_TNAME = "__schema__"


@dataclasses.dataclass
class Transaction:
    """One on-chain tuple.

    Attributes
    ----------
    tid:
        Global sequence number, assigned by consensus; ``UNASSIGNED_TID``
        before ordering.
    ts:
        Client-side send timestamp in milliseconds.
    senid:
        Sender address (hash of the public key).
    tname:
        Transaction type, i.e. the table this tuple belongs to.
    values:
        Application-level attribute values, in schema order.
    pubkey / sig:
        Sender's compressed public key and Schnorr signature over the
        signing payload.  Both empty when the deployment runs unsigned
        (``sign=False`` in the client), which the benchmark harness uses
        to keep generated datasets fast.
    nonce:
        Optional client-chosen request id, unique per (senid, nonce).
        A retried submission carries the same nonce, which lets every
        consensus engine deduplicate it instead of double-committing.
        Empty for fire-and-forget submissions (no dedup).
    """

    ts: int
    senid: str
    tname: str
    values: tuple[Any, ...]
    tid: int = UNASSIGNED_TID
    pubkey: bytes = b""
    sig: bytes = b""
    nonce: str = ""

    @classmethod
    def create(
        cls,
        tname: str,
        values: Sequence[Any],
        ts: int,
        keypair: Optional[KeyPair] = None,
        sender: Optional[str] = None,
        nonce: str = "",
    ) -> "Transaction":
        """Build (and optionally sign) a fresh, unsequenced transaction."""
        senid = keypair.address if keypair is not None else (sender or "anonymous")
        tx = cls(ts=ts, senid=senid, tname=tname.lower(), values=tuple(values),
                 nonce=nonce)
        if keypair is not None:
            tx.pubkey = keypair.public_key
            tx.sig = keypair.sign(tx.signing_payload())
        return tx

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature (no tid, no sig)."""
        writer = Writer()
        writer.write_varint(self.ts)
        writer.write_str(self.senid)
        writer.write_str(self.tname)
        writer.write_str(self.nonce)
        writer.write_varint(len(self.values))
        for value in self.values:
            writer.write_value(value)
        return writer.getvalue()

    def dedup_key(self) -> Optional[tuple[str, str]]:
        """Identity used by consensus to collapse retried submissions.

        ``None`` when the transaction carries no nonce - such
        transactions are never deduplicated (legacy behaviour).
        """
        if not self.nonce:
            return None
        return (self.senid, self.nonce)

    def verify_signature(self) -> bool:
        """Check the Schnorr signature and that senid matches the key."""
        if not self.sig or not self.pubkey:
            return False
        if address_of(self.pubkey) != self.senid:
            return False
        return schnorr_verify(self.pubkey, self.signing_payload(), self.sig)

    def require_valid_signature(self) -> None:
        if not self.verify_signature():
            raise SignatureError(
                f"invalid signature on transaction tname={self.tname!r} "
                f"senid={self.senid!r}"
            )

    @property
    def is_sequenced(self) -> bool:
        return self.tid != UNASSIGNED_TID

    def with_tid(self, tid: int) -> "Transaction":
        """Copy of this transaction with the global id assigned."""
        return dataclasses.replace(self, tid=tid)

    # -- row view ---------------------------------------------------------

    def row(self) -> tuple[Any, ...]:
        """Full tuple: system columns then application columns."""
        return (self.tid, self.ts, self.sig, self.senid, self.tname) + self.values

    def as_dict(self, schema: Optional[TableSchema] = None) -> dict[str, Any]:
        """Mapping column name -> value; app columns need the schema."""
        out: dict[str, Any] = {
            "tid": self.tid,
            "ts": self.ts,
            "sig": self.sig,
            "senid": self.senid,
            "tname": self.tname,
        }
        if schema is not None:
            for col, value in zip(schema.app_columns, self.values):
                out[col.name] = value
        else:
            for i, value in enumerate(self.values):
                out[f"v{i}"] = value
        return out

    def get(self, column: str, schema: TableSchema) -> Any:
        """Value of ``column`` according to ``schema``."""
        return self.row()[schema.column_index(column)]

    # -- wire format ------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.write_signed(self.tid)
        writer.write_varint(self.ts)
        writer.write_bytes(self.sig)
        writer.write_bytes(self.pubkey)
        writer.write_str(self.senid)
        writer.write_str(self.tname)
        writer.write_str(self.nonce)
        writer.write_varint(len(self.values))
        for value in self.values:
            writer.write_value(value)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: Reader) -> "Transaction":
        tid = reader.read_signed()
        ts = reader.read_varint()
        sig = reader.read_bytes()
        pubkey = reader.read_bytes()
        senid = reader.read_str()
        tname = reader.read_str()
        nonce = reader.read_str()
        count = reader.read_varint()
        values = tuple(reader.read_value() for _ in range(count))
        return cls(
            tid=tid, ts=ts, sig=sig, pubkey=pubkey, senid=senid,
            tname=tname, values=values, nonce=nonce,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Transaction":
        return cls.read_from(Reader(data))

    def hash(self) -> bytes:
        """Hash over the full serialized transaction (Merkle leaf input)."""
        return sha256(self.to_bytes())

    def size_bytes(self) -> int:
        """Serialized size; drives block packaging by byte budget."""
        return len(self.to_bytes())


def schema_sync_transaction(schema: TableSchema, ts: int,
                            keypair: Optional[KeyPair] = None) -> Transaction:
    """The special transaction that replicates a CREATE to all nodes."""
    return Transaction.create(
        SCHEMA_TNAME, (schema.to_bytes(),), ts=ts, keypair=keypair,
        sender="system",
    )


def schema_from_sync_transaction(tx: Transaction) -> TableSchema:
    """Inverse of :func:`schema_sync_transaction`."""
    if tx.tname != SCHEMA_TNAME or len(tx.values) != 1:
        raise SignatureError("not a schema synchronization transaction")
    return TableSchema.from_bytes(tx.values[0])
