"""Blocks: header + body, exactly as Figure 3 of the paper.

Header fields: ``prev_hash``, ``height`` (blockHeight), ``timestamp``
(packaging time), ``trans_root`` (Merkle root over all transactions),
``signature``/``packager`` (who packaged the block) and ``block_hash``
(hash of the current block header).  The body is the ordered list of
transactions; a block routinely mixes transactions of several tables.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from ..common.codec import Reader, Writer
from ..common.errors import CodecError, StorageError
from ..common.hashing import hash_leaf, merkle_root_from_leaves, sha256
from ..crypto.keys import KeyPair
from .transaction import Transaction

GENESIS_PREV_HASH = b"\x00" * 32


@dataclasses.dataclass
class BlockHeader:
    """Metadata of one block (the part thin clients keep)."""

    prev_hash: bytes
    height: int
    timestamp: int
    trans_root: bytes
    packager: str = ""
    signature: bytes = b""

    def hash_payload(self) -> bytes:
        """Canonical bytes hashed into ``block_hash`` (excludes signature)."""
        writer = Writer()
        writer.write_bytes(self.prev_hash)
        writer.write_varint(self.height)
        writer.write_varint(self.timestamp)
        writer.write_bytes(self.trans_root)
        writer.write_str(self.packager)
        return writer.getvalue()

    def block_hash(self) -> bytes:
        return sha256(self.hash_payload())

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.write_bytes(self.prev_hash)
        writer.write_varint(self.height)
        writer.write_varint(self.timestamp)
        writer.write_bytes(self.trans_root)
        writer.write_str(self.packager)
        writer.write_bytes(self.signature)
        return writer.getvalue()

    @classmethod
    def read_from(cls, reader: Reader) -> "BlockHeader":
        return cls(
            prev_hash=reader.read_bytes(),
            height=reader.read_varint(),
            timestamp=reader.read_varint(),
            trans_root=reader.read_bytes(),
            packager=reader.read_str(),
            signature=reader.read_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BlockHeader":
        return cls.read_from(Reader(data))


@dataclasses.dataclass
class Block:
    """A sealed block: header plus ordered transactions."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    @classmethod
    def package(
        cls,
        prev_hash: bytes,
        height: int,
        timestamp: int,
        transactions: Sequence[Transaction],
        packager: str = "",
        keypair: Optional[KeyPair] = None,
    ) -> "Block":
        """Seal ``transactions`` into a block, computing the Merkle root.

        All transactions must already carry their global ``tid``; the
        block-level index relies on the first tid of each block being the
        smallest.
        """
        txs = tuple(transactions)
        for tx in txs:
            if not tx.is_sequenced:
                raise StorageError("cannot package an unsequenced transaction")
        root = merkle_root_from_leaves([hash_leaf(tx.to_bytes()) for tx in txs])
        header = BlockHeader(
            prev_hash=prev_hash,
            height=height,
            timestamp=timestamp,
            trans_root=root,
            packager=packager or (keypair.address if keypair else ""),
        )
        if keypair is not None:
            header.signature = keypair.sign(header.hash_payload())
        return cls(header=header, transactions=txs)

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def timestamp(self) -> int:
        return self.header.timestamp

    @property
    def first_tid(self) -> int:
        if not self.transactions:
            raise StorageError(f"block {self.height} is empty")
        return self.transactions[0].tid

    @property
    def last_tid(self) -> int:
        if not self.transactions:
            raise StorageError(f"block {self.height} is empty")
        return self.transactions[-1].tid

    def block_hash(self) -> bytes:
        return self.header.block_hash()

    def table_names(self) -> set[str]:
        """Distinct transaction types present in this block."""
        return {tx.tname for tx in self.transactions}

    def verify_trans_root(self) -> bool:
        """Recompute the Merkle root and compare with the header."""
        root = merkle_root_from_leaves(
            [hash_leaf(tx.to_bytes()) for tx in self.transactions]
        )
        return root == self.header.trans_root

    def size_bytes(self) -> int:
        return len(self.to_bytes())

    # -- wire format ------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.write_bytes(self.header.to_bytes())
        writer.write_varint(len(self.transactions))
        for tx in self.transactions:
            writer.write_bytes(tx.to_bytes())
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Block":
        reader = Reader(data)
        header = BlockHeader.from_bytes(reader.read_bytes())
        count = reader.read_varint()
        txs = []
        for _ in range(count):
            txs.append(Transaction.from_bytes(reader.read_bytes()))
        if reader.remaining():
            raise CodecError(
                f"{reader.remaining()} trailing bytes after block {header.height}"
            )
        return cls(header=header, transactions=tuple(txs))


def iter_table(block: Block, tname: str) -> Iterable[Transaction]:
    """Transactions of one table inside a block, in tid order."""
    lowered = tname.lower()
    return (tx for tx in block.transactions if tx.tname == lowered)
