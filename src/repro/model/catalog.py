"""The on-chain catalog.

Table schemas are themselves replicated through the chain: a CREATE turns
into a special ``__schema__`` transaction, and every node that applies the
block registers the schema here.  The catalog therefore converges on all
nodes exactly like ordinary data does.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..common.errors import CatalogError
from .block import Block
from .schema import TableSchema
from .transaction import SCHEMA_TNAME, schema_from_sync_transaction


class Catalog:
    """Registry of on-chain table schemas for one node."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def register(self, schema: TableSchema, replace: bool = False) -> None:
        if not replace and schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema

    def get(self, name: str) -> TableSchema:
        lowered = name.lower()
        if lowered == SCHEMA_TNAME:
            raise CatalogError("the schema table is internal")
        if lowered not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        return self._tables[lowered]

    def find(self, name: str) -> Optional[TableSchema]:
        return self._tables.get(name.lower())

    def apply_schema(self, schema: TableSchema) -> bool:
        """Commit one replicated schema registration (idempotent).

        The ledger pipeline's apply stage calls this in tid order with
        schemas its workers parsed concurrently; :meth:`apply_block`
        routes through it too, so both paths converge identically.
        Returns True when the schema was new.
        """
        if schema.name in self._tables:
            return False
        self._tables[schema.name] = schema
        return True

    def apply_block(self, block: Block) -> list[TableSchema]:
        """Pick up schema-sync transactions from a freshly applied block."""
        registered = []
        for tx in block.transactions:
            if tx.tname == SCHEMA_TNAME:
                schema = schema_from_sync_transaction(tx)
                if self.apply_schema(schema):
                    registered.append(schema)
        return registered

    def apply_blocks(self, blocks: Iterable[Block]) -> None:
        for block in blocks:
            self.apply_block(block)
