"""Genesis block construction.

The genesis block (height 0) anchors the chain: its ``prev_hash`` is all
zeroes and it may carry initial schema-synchronization transactions so a
fresh network boots with its catalog already agreed on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..crypto.keys import KeyPair
from .block import GENESIS_PREV_HASH, Block
from .schema import TableSchema
from .transaction import Transaction, schema_sync_transaction


def make_genesis(
    timestamp: int = 0,
    schemas: Optional[Sequence[TableSchema]] = None,
    keypair: Optional[KeyPair] = None,
) -> Block:
    """Build the genesis block, optionally pre-loading table schemas."""
    txs: list[Transaction] = []
    for i, schema in enumerate(schemas or ()):
        tx = schema_sync_transaction(schema, ts=timestamp, keypair=keypair)
        txs.append(tx.with_tid(i))
    return Block.package(
        prev_hash=GENESIS_PREV_HASH,
        height=0,
        timestamp=timestamp,
        transactions=txs,
        packager="genesis",
        keypair=keypair,
    )


def verify_chain(blocks: Iterable[Block]) -> bool:
    """Validate hash-chaining and Merkle roots over consecutive blocks."""
    prev_hash = GENESIS_PREV_HASH
    expected_height = 0
    for block in blocks:
        if block.header.prev_hash != prev_hash:
            return False
        if block.header.height != expected_height:
            return False
        if not block.verify_trans_root():
            return False
        prev_hash = block.block_hash()
        expected_height += 1
    return True
