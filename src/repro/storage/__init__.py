"""Block storage: segment files, block store, caches, I/O cost model."""

from .blockstore import BlockStore
from .costmodel import CostModel, CostSnapshot
from .segment import BlockLocation, SegmentStore

__all__ = [
    "BlockLocation",
    "BlockStore",
    "CostModel",
    "CostSnapshot",
    "SegmentStore",
]
