"""Block storage: segment files, block store, caches, I/O cost model."""

from .blockstore import BlockStore
from .costmodel import CostModel, CostSnapshot, CostTracker
from .scan import StoreScanner
from .segment import BlockLocation, SegmentStore

__all__ = [
    "BlockLocation",
    "BlockStore",
    "CostModel",
    "CostSnapshot",
    "CostTracker",
    "SegmentStore",
    "StoreScanner",
]
