"""The chain block store.

Owns the append-only segment files, the per-block physical locations, the
byte offsets of every transaction inside its block (so the layered index
can read a *single* tuple with one random I/O, eq. 3 of the paper), the
headers kept for thin clients, and the read cache.

Caching (Fig 22): ``cache_mode="block"`` keeps whole recently-read blocks;
``cache_mode="transaction"`` keeps individual recently-read tuples.  Cost
accounting only charges the cost model on cache misses.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..common.codec import Writer
from ..common.config import SebdbConfig
from ..common.errors import StorageError
from ..common.lru import LRUCache
from ..model.block import Block, BlockHeader
from ..model.transaction import Transaction
from .costmodel import CostModel, CostTracker
from .segment import BlockLocation, SegmentStore


class BlockStore:
    """Append-only, cache-fronted, cost-accounted block storage."""

    def __init__(
        self,
        config: Optional[SebdbConfig] = None,
        cost: Optional[CostModel] = None,
    ) -> None:
        self.config = config or SebdbConfig.in_memory()
        self.cost = cost or CostModel()
        self._segments = SegmentStore(
            self.config.data_dir, self.config.segment_file_size
        )
        self._locations: list[BlockLocation] = []
        #: per block: list of (offset_in_block, length) for each transaction
        self._tx_offsets: list[list[tuple[int, int]]] = []
        self._headers: list[BlockHeader] = []
        self._tip_hash: Optional[bytes] = None
        self._block_cache: LRUCache[int, Block] = LRUCache(
            self.config.cache_bytes if self.config.cache_mode == "block" else 0,
            size_of=lambda b: b.size_bytes(),
        )
        self._tx_cache: LRUCache[tuple[int, int], Transaction] = LRUCache(
            self.config.cache_bytes if self.config.cache_mode == "transaction" else 0,
            size_of=lambda t: t.size_bytes(),
        )
        self._listeners: list[Callable[[Block, BlockLocation], None]] = []
        if self.config.data_dir is not None:
            self._recover_from_segments()

    def _recover_from_segments(self) -> None:
        """Rebuild chain state by re-parsing existing on-disk segments.

        Blocks are self-delimiting (length-prefixed header, transaction
        count, length-prefixed transactions), so a sequential parse of
        each segment file recovers every block's location and the per-
        transaction offsets.  Chaining and Merkle roots are re-verified;
        a torn tail (partial final write) stops recovery cleanly at the
        last complete block.
        """
        from ..common.codec import Reader
        from ..common.errors import CodecError
        from .segment import BlockLocation as _Loc

        for segment in range(self._segments.segment_count):
            path = self._segments._segment_path(segment)  # noqa: SLF001
            if not path.exists():
                continue
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                reader = Reader(data, offset)
                try:
                    header_bytes = reader.read_bytes()
                    header = BlockHeader.from_bytes(header_bytes)
                    count = reader.read_varint()
                    tx_offsets: list[tuple[int, int]] = []
                    txs = []
                    for _ in range(count):
                        length = reader.read_varint()
                        start = reader.position
                        txs.append(
                            Transaction.from_bytes(
                                data[start : start + length]
                            )
                        )
                        reader.read_raw(length)
                        tx_offsets.append((start - offset, length))
                except CodecError:
                    return  # torn tail: stop at the last complete block
                block = Block(header=header, transactions=tuple(txs))
                if block.header.height != self.height:
                    return
                if (self._tip_hash is not None
                        and block.header.prev_hash != self._tip_hash):
                    return
                if not block.verify_trans_root():
                    return
                length_total = reader.position - offset
                self._locations.append(
                    _Loc(segment=segment, offset=offset, length=length_total)
                )
                self._tx_offsets.append(tx_offsets)
                self._headers.append(block.header)
                self._tip_hash = block.block_hash()
                offset = reader.position

    # -- chain state -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    @property
    def height(self) -> int:
        """Number of blocks stored (next block's height)."""
        return len(self._locations)

    @property
    def tip_hash(self) -> Optional[bytes]:
        return self._tip_hash

    @property
    def headers(self) -> list[BlockHeader]:
        """All block headers (what a thin client synchronizes)."""
        return list(self._headers)

    def header(self, height: int) -> BlockHeader:
        self._check_height(height)
        return self._headers[height]

    def add_listener(self, listener: Callable[[Block, BlockLocation], None]) -> None:
        """Register a callback fired after every successful append."""
        self._listeners.append(listener)

    def _check_height(self, height: int) -> None:
        if not 0 <= height < len(self._locations):
            raise StorageError(
                f"block {height} does not exist (chain height {self.height})"
            )

    # -- writes ------------------------------------------------------------

    def append_block(self, block: Block) -> BlockLocation:
        """Append a sealed block; verifies chaining against the tip."""
        if block.header.height != self.height:
            raise StorageError(
                f"expected block height {self.height}, got {block.header.height}"
            )
        if self._tip_hash is not None and block.header.prev_hash != self._tip_hash:
            raise StorageError(
                f"block {block.header.height} does not chain to the tip"
            )
        data, offsets = _serialize_with_offsets(block)
        location = self._segments.append(data)
        # appending is one seek at most (sequential after the first write)
        self.cost.record_write(len(data), seeks=0)
        self._locations.append(location)
        self._tx_offsets.append(offsets)
        self._headers.append(block.header)
        self._tip_hash = block.block_hash()
        for listener in self._listeners:
            listener(block, location)
        return location

    # -- reads ---------------------------------------------------------------

    def read_block(
        self, height: int, trackers: Sequence[CostTracker] = ()
    ) -> Block:
        """Read a whole block: one seek + size/pagesize transfers on miss.

        ``trackers`` are per-scope cost trackers (usually one per query
        and one per plan operator) charged alongside the global model, so
        interleaved readers each account exactly their own I/O.
        """
        self._check_height(height)
        cached = self._block_cache.get(height)
        if cached is not None:
            return cached
        location = self._locations[height]
        self.cost.record_read(location.length, seeks=1)
        for tracker in trackers:
            tracker.record_read(location.length, seeks=1)
        block = Block.from_bytes(self._segments.read(location))
        if self.config.cache_mode == "block":
            self._block_cache.put(height, block)
        return block

    def transactions_in_block(self, height: int) -> int:
        self._check_height(height)
        return len(self._tx_offsets[height])

    def read_transaction(
        self, height: int, tx_index: int,
        trackers: Sequence[CostTracker] = (),
    ) -> Transaction:
        """Read a single tuple: one random I/O (seek + 1-page transfer).

        This is the access path the layered index uses; under the block
        cache policy it falls back to reading the whole block.
        """
        self._check_height(height)
        offsets = self._tx_offsets[height]
        if not 0 <= tx_index < len(offsets):
            raise StorageError(
                f"block {height} has no transaction index {tx_index}"
            )
        if self.config.cache_mode == "block":
            # the block cache policy serves point reads out of whole blocks
            return self.read_block(height, trackers).transactions[tx_index]
        cached = self._tx_cache.get((height, tx_index))
        if cached is not None:
            return cached
        offset, length = offsets[tx_index]
        self.cost.record_read(length, seeks=1)
        for tracker in trackers:
            tracker.record_read(length, seeks=1)
        raw = self._segments.read_range(self._locations[height], offset, length)
        tx = Transaction.from_bytes(raw)
        if self.config.cache_mode == "transaction":
            self._tx_cache.put((height, tx_index), tx)
        return tx

    def scanner(self, *trackers: CostTracker) -> "StoreScanner":
        """The scan interface query operators must read through."""
        from .scan import StoreScanner

        return StoreScanner(self, trackers)

    def iter_blocks(self, start: int = 0, end: Optional[int] = None) -> Iterator[Block]:
        """Sequential scan of blocks ``start .. end-1``."""
        stop = self.height if end is None else min(end, self.height)
        for height in range(start, stop):
            yield self.read_block(height)

    def block_size(self, height: int) -> int:
        self._check_height(height)
        return self._locations[height].length

    def location(self, height: int) -> BlockLocation:
        """Physical location of a stored block."""
        self._check_height(height)
        return self._locations[height]

    # -- cache introspection (Fig 22 metrics) --------------------------------

    @property
    def block_cache(self) -> LRUCache[int, Block]:
        return self._block_cache

    @property
    def tx_cache(self) -> LRUCache[tuple[int, int], Transaction]:
        return self._tx_cache

    def clear_caches(self) -> None:
        self._block_cache.clear()
        self._tx_cache.clear()


def _serialize_with_offsets(block: Block) -> tuple[bytes, list[tuple[int, int]]]:
    """Serialize a block, recording each transaction's (offset, length).

    Mirrors :meth:`Block.to_bytes` byte-for-byte; the offsets address the
    raw transaction bytes (after their varint length prefix) so a point
    read deserializes directly with :meth:`Transaction.from_bytes`.
    """
    header_bytes = block.header.to_bytes()
    writer = Writer()
    writer.write_bytes(header_bytes)
    writer.write_varint(len(block.transactions))
    prefix = writer.getvalue()
    parts = [prefix]
    position = len(prefix)
    offsets: list[tuple[int, int]] = []
    for tx in block.transactions:
        tx_bytes = tx.to_bytes()
        lp = Writer()
        lp.write_varint(len(tx_bytes))
        length_prefix = lp.getvalue()
        parts.append(length_prefix)
        position += len(length_prefix)
        offsets.append((position, len(tx_bytes)))
        parts.append(tx_bytes)
        position += len(tx_bytes)
    return b"".join(parts), offsets
