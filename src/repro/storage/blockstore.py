"""The chain block store.

Owns the append-only segment files, the per-block physical locations, the
byte offsets of every transaction inside its block (so the layered index
can read a *single* tuple with one random I/O, eq. 3 of the paper), the
headers kept for thin clients, and the read cache.

Caching (Fig 22): ``cache_mode="block"`` keeps whole recently-read blocks;
``cache_mode="transaction"`` keeps individual recently-read tuples.  Cost
accounting only charges the cost model on cache misses.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..common.codec import Writer
from ..common.config import SebdbConfig
from ..common.errors import StorageError
from ..common.lru import LRUCache
from ..model.block import Block, BlockHeader
from ..model.transaction import Transaction
from .costmodel import CostModel, CostTracker
from .segment import BlockLocation, SegmentStore


class BlockStore:
    """Append-only, cache-fronted, cost-accounted block storage."""

    def __init__(
        self,
        config: Optional[SebdbConfig] = None,
        cost: Optional[CostModel] = None,
        trusted_checkpoint: Optional[tuple[int, bytes]] = None,
    ) -> None:
        self.config = config or SebdbConfig.in_memory()
        self.cost = cost or CostModel()
        self._segments = SegmentStore(
            self.config.data_dir, self.config.segment_file_size
        )
        self._locations: list[BlockLocation] = []
        #: per block: list of (offset_in_block, length) for each transaction
        self._tx_offsets: list[list[tuple[int, int]]] = []
        self._headers: list[BlockHeader] = []
        self._tip_hash: Optional[bytes] = None
        self._block_cache: LRUCache[int, Block] = LRUCache(
            self.config.cache_bytes if self.config.cache_mode == "block" else 0,
            size_of=lambda b: b.size_bytes(),
        )
        self._tx_cache: LRUCache[tuple[int, int], Transaction] = LRUCache(
            self.config.cache_bytes if self.config.cache_mode == "transaction" else 0,
            size_of=lambda t: t.size_bytes(),
        )
        self._listeners: list[Callable[[Block, BlockLocation], None]] = []
        #: diagnostics of the most recent segment recovery
        self.recovery_report: dict[str, object] = {}
        if self.config.data_dir is not None:
            self._recover_from_segments(trusted_checkpoint)

    def _recover_from_segments(
        self, trusted_checkpoint: Optional[tuple[int, bytes]] = None
    ) -> None:
        """Rebuild chain state by re-parsing existing on-disk segments.

        Blocks are self-delimiting (length-prefixed header, transaction
        count, length-prefixed transactions), so a sequential parse of
        each segment file recovers every block's location and the per-
        transaction offsets.  Chaining and Merkle roots are re-verified;
        a torn tail (partial final write) stops recovery cleanly at the
        last complete block.

        ``trusted_checkpoint`` is a durable ``(height, tip_hash)`` anchor
        (the ledger's persisted engine checkpoint): blocks below it skip
        the Merkle-root recomputation, because the prefix was quorum-
        certified when the checkpoint was recorded.  If the recovered
        chain does not reproduce the anchor hash, the whole store is
        re-parsed with full verification - a corrupted store must never
        hide behind a checkpoint.
        """
        verify_below = 0
        if trusted_checkpoint is not None:
            verify_below = max(0, trusted_checkpoint[0])
        skipped = self._parse_segments(verify_below)
        fallback = False
        if verify_below:
            t_height, t_tip = trusted_checkpoint
            anchored = (
                self.height >= t_height
                and self._headers[t_height - 1].block_hash() == t_tip
            )
            if not anchored:
                fallback = True
                self._reset_chain_state()
                skipped = self._parse_segments(0)
        self.recovery_report = {
            "blocks": self.height,
            "merkle_skipped": skipped,
            "trusted_fallback": fallback,
        }

    def _parse_segments(self, verify_below: int) -> int:
        """Sequentially parse every segment; returns Merkle checks skipped."""
        from ..common.codec import Reader
        from ..common.errors import CodecError
        from .segment import BlockLocation as _Loc

        skipped = 0
        for segment in range(self._segments.segment_count):
            data = self._segments.segment_payload(segment)
            offset = 0
            while offset < len(data):
                reader = Reader(data, offset)
                try:
                    header_bytes = reader.read_bytes()
                    header = BlockHeader.from_bytes(header_bytes)
                    count = reader.read_varint()
                    tx_offsets: list[tuple[int, int]] = []
                    txs = []
                    for _ in range(count):
                        length = reader.read_varint()
                        start = reader.position
                        txs.append(
                            Transaction.from_bytes(
                                data[start : start + length]
                            )
                        )
                        reader.read_raw(length)
                        tx_offsets.append((start - offset, length))
                except CodecError:
                    return skipped  # torn tail: stop at the last complete block
                block = Block(header=header, transactions=tuple(txs))
                if block.header.height != self.height:
                    return skipped
                if (self._tip_hash is not None
                        and block.header.prev_hash != self._tip_hash):
                    return skipped
                if block.header.height < verify_below:
                    skipped += 1
                elif not block.verify_trans_root():
                    return skipped
                length_total = reader.position - offset
                self._locations.append(
                    _Loc(segment=segment, offset=offset, length=length_total)
                )
                self._tx_offsets.append(tx_offsets)
                self._headers.append(block.header)
                self._tip_hash = block.block_hash()
                offset = reader.position
        return skipped

    def _reset_chain_state(self) -> None:
        self._locations = []
        self._tx_offsets = []
        self._headers = []
        self._tip_hash = None
        self.clear_caches()

    # -- chain state -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._locations)

    @property
    def height(self) -> int:
        """Number of blocks stored (next block's height)."""
        return len(self._locations)

    @property
    def tip_hash(self) -> Optional[bytes]:
        return self._tip_hash

    @property
    def headers(self) -> list[BlockHeader]:
        """All block headers (what a thin client synchronizes)."""
        return list(self._headers)

    def header(self, height: int) -> BlockHeader:
        self._check_height(height)
        return self._headers[height]

    def add_listener(self, listener: Callable[[Block, BlockLocation], None]) -> None:
        """Register a callback fired after every successful append."""
        self._listeners.append(listener)

    def _check_height(self, height: int) -> None:
        if not 0 <= height < len(self._locations):
            raise StorageError(
                f"block {height} does not exist (chain height {self.height})"
            )

    # -- writes ------------------------------------------------------------

    def append_block(self, block: Block, *, notify: bool = True) -> BlockLocation:
        """Append a sealed block; verifies chaining against the tip.

        Only the ledger pipeline's persist stage may call this (enforced
        by the ``commit-path`` analysis rule) - every other layer commits
        through :class:`repro.ledger.LedgerPipeline`.  With
        ``notify=False`` the append listeners (index/MHT maintenance) are
        deferred; the pipeline fires them in its apply stage via
        :meth:`notify_append_listeners`.
        """
        if block.header.height != self.height:
            raise StorageError(
                f"expected block height {self.height}, got {block.header.height}"
            )
        if self._tip_hash is not None and block.header.prev_hash != self._tip_hash:
            raise StorageError(
                f"block {block.header.height} does not chain to the tip"
            )
        data, offsets = _serialize_with_offsets(block)
        location = self._segments.append(data)
        # appending is one seek at most (sequential after the first write)
        self.cost.record_write(len(data), seeks=0)
        self._locations.append(location)
        self._tx_offsets.append(offsets)
        self._headers.append(block.header)
        self._tip_hash = block.block_hash()
        if notify:
            self.notify_append_listeners(block, location)
        return location

    def notify_append_listeners(self, block: Block, location: BlockLocation) -> None:
        """Fire the append listeners for an already-persisted block."""
        for listener in self._listeners:
            listener(block, location)

    def simulate_torn_append(self, data: bytes) -> None:
        """Fault hook: write raw bytes without admitting a block.

        Models a crash mid-append - the bytes land in the active segment
        but no chain state records them, exactly what a power cut between
        the commit log's BEGIN and the completed segment write leaves
        behind.  Only the fault-injection paths use this.
        """
        self._segments.append(data)

    def discard_torn_tail(self) -> int:
        """Truncate every segment byte past the last complete block.

        Returns the number of bytes removed.  Called by the ledger's
        write-ahead recovery when a pending commit record proves the
        trailing bytes belong to a block that never committed.
        """
        if self._locations:
            last = self._locations[-1]
            return self._segments.truncate_after(
                last.segment, last.offset + last.length
            )
        return self._segments.truncate_after(0, 0)

    # -- reads ---------------------------------------------------------------

    def read_block(
        self, height: int, trackers: Sequence[CostTracker] = ()
    ) -> Block:
        """Read a whole block: one seek + size/pagesize transfers on miss.

        ``trackers`` are per-scope cost trackers (usually one per query
        and one per plan operator) charged alongside the global model, so
        interleaved readers each account exactly their own I/O.
        """
        self._check_height(height)
        cached = self._block_cache.get(height)
        if cached is not None:
            return cached
        location = self._locations[height]
        self.cost.record_read(location.length, seeks=1)
        for tracker in trackers:
            tracker.record_read(location.length, seeks=1)
        block = Block.from_bytes(self._segments.read(location))
        if self.config.cache_mode == "block":
            self._block_cache.put(height, block)
        return block

    def transactions_in_block(self, height: int) -> int:
        self._check_height(height)
        return len(self._tx_offsets[height])

    def read_transaction(
        self, height: int, tx_index: int,
        trackers: Sequence[CostTracker] = (),
    ) -> Transaction:
        """Read a single tuple: one random I/O (seek + 1-page transfer).

        This is the access path the layered index uses; under the block
        cache policy it falls back to reading the whole block.
        """
        self._check_height(height)
        offsets = self._tx_offsets[height]
        if not 0 <= tx_index < len(offsets):
            raise StorageError(
                f"block {height} has no transaction index {tx_index}"
            )
        if self.config.cache_mode == "block":
            # the block cache policy serves point reads out of whole blocks
            return self.read_block(height, trackers).transactions[tx_index]
        cached = self._tx_cache.get((height, tx_index))
        if cached is not None:
            return cached
        offset, length = offsets[tx_index]
        self.cost.record_read(length, seeks=1)
        for tracker in trackers:
            tracker.record_read(length, seeks=1)
        raw = self._segments.read_range(self._locations[height], offset, length)
        tx = Transaction.from_bytes(raw)
        if self.config.cache_mode == "transaction":
            self._tx_cache.put((height, tx_index), tx)
        return tx

    def scanner(self, *trackers: CostTracker) -> "StoreScanner":
        """The scan interface query operators must read through."""
        from .scan import StoreScanner

        return StoreScanner(self, trackers)

    def iter_blocks(self, start: int = 0, end: Optional[int] = None) -> Iterator[Block]:
        """Sequential scan of blocks ``start .. end-1``."""
        stop = self.height if end is None else min(end, self.height)
        for height in range(start, stop):
            yield self.read_block(height)

    def block_size(self, height: int) -> int:
        self._check_height(height)
        return self._locations[height].length

    def location(self, height: int) -> BlockLocation:
        """Physical location of a stored block."""
        self._check_height(height)
        return self._locations[height]

    # -- cache introspection (Fig 22 metrics) --------------------------------

    @property
    def block_cache(self) -> LRUCache[int, Block]:
        return self._block_cache

    @property
    def tx_cache(self) -> LRUCache[tuple[int, int], Transaction]:
        return self._tx_cache

    def clear_caches(self) -> None:
        self._block_cache.clear()
        self._tx_cache.clear()


def _serialize_with_offsets(block: Block) -> tuple[bytes, list[tuple[int, int]]]:
    """Serialize a block, recording each transaction's (offset, length).

    Mirrors :meth:`Block.to_bytes` byte-for-byte; the offsets address the
    raw transaction bytes (after their varint length prefix) so a point
    read deserializes directly with :meth:`Transaction.from_bytes`.
    """
    header_bytes = block.header.to_bytes()
    writer = Writer()
    writer.write_bytes(header_bytes)
    writer.write_varint(len(block.transactions))
    prefix = writer.getvalue()
    parts = [prefix]
    position = len(prefix)
    offsets: list[tuple[int, int]] = []
    for tx in block.transactions:
        tx_bytes = tx.to_bytes()
        lp = Writer()
        lp.write_varint(len(tx_bytes))
        length_prefix = lp.getvalue()
        parts.append(length_prefix)
        position += len(length_prefix)
        offsets.append((position, len(tx_bytes)))
        parts.append(tx_bytes)
        position += len(tx_bytes)
    return b"".join(parts), offsets
