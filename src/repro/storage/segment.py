"""Append-only segment files.

Blocks are appended to numbered segment files (``segment-000001.dat`` ...);
once a block is written it is immutable.  When the active segment would
exceed the configured size (paper default 256 MB) a new one is started.
A ``data_dir`` of ``None`` keeps segments in memory, which tests and
benchmarks use for speed - the access pattern and the cost accounting are
identical either way.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional

from ..common.errors import StorageError

_SEGMENT_NAME = "segment-{:06d}.dat"


@dataclasses.dataclass(frozen=True)
class BlockLocation:
    """Physical address of a block: segment number, byte offset, length."""

    segment: int
    offset: int
    length: int


class SegmentStore:
    """A sequence of append-only segments, on disk or in memory."""

    def __init__(self, data_dir: Optional[Path], segment_size: int) -> None:
        if segment_size <= 0:
            raise StorageError("segment_size must be positive")
        self._dir = Path(data_dir) if data_dir is not None else None
        self._segment_size = segment_size
        self._memory: list[bytearray] = []
        self._active = 0
        self._active_offset = 0
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._recover()
        else:
            self._memory.append(bytearray())

    def _segment_path(self, segment: int) -> Path:
        assert self._dir is not None
        return self._dir / _SEGMENT_NAME.format(segment)

    def _recover(self) -> None:
        """Resume appending after the last existing on-disk segment."""
        assert self._dir is not None
        existing = sorted(self._dir.glob("segment-*.dat"))
        if not existing:
            self._segment_path(0).touch()
            return
        last = existing[-1]
        self._active = int(last.stem.split("-")[1])
        self._active_offset = last.stat().st_size

    @property
    def segment_count(self) -> int:
        return self._active + 1

    def segment_payload(self, segment: int) -> bytes:
        """Every byte currently stored in ``segment``.

        The public accessor recovery scans use: a sequential re-parse of
        each segment needs the raw payload including any torn tail, which
        the location-addressed :meth:`read` cannot express.  A segment
        that was never written reads back empty.
        """
        if self._dir is None:
            if segment >= len(self._memory):
                raise StorageError(f"no such segment {segment}")
            return bytes(self._memory[segment])
        path = self._segment_path(segment)
        if not path.exists():
            return b""
        return path.read_bytes()

    def truncate_after(self, segment: int, offset: int) -> int:
        """Discard every byte past ``offset`` in ``segment`` and every
        later segment; returns the number of bytes removed.

        Only the write-path recovery may call this (discarding a torn
        tail the commit log proves was never committed); stored blocks
        themselves stay immutable.
        """
        removed = 0
        if self._dir is None:
            while len(self._memory) <= segment:
                self._memory.append(bytearray())
            for later in self._memory[segment + 1:]:
                removed += len(later)
            del self._memory[segment + 1:]
            buf = self._memory[segment]
            if len(buf) > offset:
                removed += len(buf) - offset
                del buf[offset:]
        else:
            for path in sorted(self._dir.glob("segment-*.dat")):
                if int(path.stem.split("-")[1]) > segment:
                    removed += path.stat().st_size
                    path.unlink()
            path = self._segment_path(segment)
            if not path.exists():
                path.touch()
            elif path.stat().st_size > offset:
                removed += path.stat().st_size - offset
                with open(path, "r+b") as fh:
                    fh.truncate(offset)
        self._active = segment
        self._active_offset = offset
        return removed

    def append(self, data: bytes) -> BlockLocation:
        """Append ``data`` to the active segment, rolling over when full."""
        if not data:
            raise StorageError("refusing to append empty record")
        if self._active_offset and self._active_offset + len(data) > self._segment_size:
            self._active += 1
            self._active_offset = 0
            if self._dir is None:
                self._memory.append(bytearray())
            else:
                self._segment_path(self._active).touch()
        location = BlockLocation(
            segment=self._active, offset=self._active_offset, length=len(data)
        )
        if self._dir is None:
            self._memory[self._active].extend(data)
        else:
            with open(self._segment_path(self._active), "ab") as fh:
                fh.write(data)
        self._active_offset += len(data)
        return location

    def read(self, location: BlockLocation) -> bytes:
        """Read back the exact bytes at ``location``."""
        if self._dir is None:
            if location.segment >= len(self._memory):
                raise StorageError(f"no such segment {location.segment}")
            buf = self._memory[location.segment]
            if location.offset + location.length > len(buf):
                raise StorageError(
                    f"read past end of segment {location.segment}: "
                    f"{location.offset}+{location.length} > {len(buf)}"
                )
            return bytes(buf[location.offset : location.offset + location.length])
        path = self._segment_path(location.segment)
        if not path.exists():
            raise StorageError(f"missing segment file {path}")
        with open(path, "rb") as fh:
            fh.seek(location.offset)
            data = fh.read(location.length)
        if len(data) != location.length:
            raise StorageError(
                f"short read from {path}: wanted {location.length}, got {len(data)}"
            )
        return data

    def read_range(self, location: BlockLocation, offset: int, length: int) -> bytes:
        """Read a sub-range of a stored record (one transaction of a block)."""
        if offset < 0 or offset + length > location.length:
            raise StorageError("sub-range outside stored record")
        inner = BlockLocation(
            segment=location.segment,
            offset=location.offset + offset,
            length=length,
        )
        return self.read(inner)
