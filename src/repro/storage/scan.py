"""The scan interface between the query layer and the block store.

Query operators never touch :class:`~repro.storage.blockstore.BlockStore`
internals directly (a custom lint enforces this): every physical read goes
through a :class:`StoreScanner`, which forwards to the store and charges
each attached :class:`~repro.storage.costmodel.CostTracker` in addition to
the store's global cost model.  An operator typically scans with two
trackers attached - the query-scoped tracker (what ``QueryResult.cost``
reports) and its own per-operator tracker (what EXPLAIN ANALYZE reports) -
so per-operator I/O sums exactly to the query's total.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from ..model.block import Block
from ..model.transaction import Transaction
from .costmodel import CostTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .blockstore import BlockStore


class StoreScanner:
    """Tracker-scoped read facade over one block store."""

    __slots__ = ("_store", "_trackers")

    def __init__(self, store: "BlockStore",
                 trackers: Sequence[CostTracker] = ()) -> None:
        self._store = store
        self._trackers = tuple(trackers)

    @property
    def height(self) -> int:
        return self._store.height

    def block_size(self, height: int) -> int:
        return self._store.block_size(height)

    def read_block(self, height: int) -> Block:
        return self._store.read_block(height, trackers=self._trackers)

    def read_transaction(self, height: int, tx_index: int) -> Transaction:
        return self._store.read_transaction(
            height, tx_index, trackers=self._trackers
        )

    def iter_blocks(self, start: int = 0, end: int | None = None) -> Iterator[Block]:
        stop = self.height if end is None else min(end, self.height)
        for height in range(start, stop):
            yield self.read_block(height)
