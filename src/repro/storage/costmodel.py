"""Explicit I/O cost model.

Section IV-B of the paper analyses the select operation with

    C_no_index  = n * t_S + (f * n / b) * t_T          (eq. 1)
    C_bitmap    = k * t_S + (f * k / b) * t_T,  k <= n (eq. 2)
    C_layered   = p * t_S + p * t_T                    (eq. 3)

where ``t_T`` is the transfer time per disk page, ``t_S`` the average seek
time, ``f`` the packaged-block size, ``b`` the disk page size, ``n`` the
chain height, ``k`` the number of blocks holding the table and ``p`` the
number of matching tuples.

Every read issued by the block store is recorded here as *seeks* and *page
transfers*, so tests can assert the equations hold exactly and benchmarks
can report modelled latency alongside wall-clock time.
"""

from __future__ import annotations

import dataclasses
import math

#: Default timings, loosely calibrated to a 7200 rpm disk:
#: 4 ms average seek, 0.1 ms to transfer one 4 KB page.
DEFAULT_SEEK_MS = 4.0
DEFAULT_TRANSFER_MS = 0.1
DEFAULT_PAGE_SIZE = 4 * 1024
#: CPU time charged per tuple handled by an in-memory operator (hash
#: build/probe, merge step, sort comparison).  Three orders of magnitude
#: below a seek, so CPU terms only break ties between plans whose I/O
#: profiles are close - exactly the paper's framing, where disk I/O
#: dominates (section IV-B).
DEFAULT_CPU_TUPLE_MS = 0.0005


@dataclasses.dataclass
class CostModel:
    """Accumulates seeks and page transfers; prices them in milliseconds."""

    seek_ms: float = DEFAULT_SEEK_MS
    transfer_ms: float = DEFAULT_TRANSFER_MS
    page_size: int = DEFAULT_PAGE_SIZE
    cpu_tuple_ms: float = DEFAULT_CPU_TUPLE_MS
    seeks: int = 0
    page_transfers: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def pages_for(self, nbytes: int) -> int:
        """Number of disk pages covering ``nbytes`` (at least one)."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.page_size)

    def record_read(self, nbytes: int, seeks: int = 1) -> None:
        """Record a sequential read of ``nbytes`` after ``seeks`` seeks."""
        self.seeks += seeks
        self.page_transfers += self.pages_for(nbytes)
        self.bytes_read += nbytes

    def record_write(self, nbytes: int, seeks: int = 0) -> None:
        """Record an (append) write; appends are seek-free after the first."""
        self.seeks += seeks
        self.bytes_written += nbytes

    def elapsed_ms(self) -> float:
        """Modelled elapsed time of everything recorded so far."""
        return self.seeks * self.seek_ms + self.page_transfers * self.transfer_ms

    def snapshot(self) -> "CostSnapshot":
        return CostSnapshot(
            seeks=self.seeks,
            page_transfers=self.page_transfers,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            elapsed_ms=self.elapsed_ms(),
        )

    def reset(self) -> None:
        self.seeks = 0
        self.page_transfers = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- closed-form estimates (the paper's equations) --------------------

    def estimate_scan(self, n_blocks: int, block_size: int) -> float:
        """Eq. (1): full chain scan cost in ms."""
        pages = n_blocks * self.pages_for(block_size)
        return n_blocks * self.seek_ms + pages * self.transfer_ms

    def estimate_bitmap(self, k_blocks: int, block_size: int) -> float:
        """Eq. (2): bitmap-filtered scan cost in ms."""
        pages = k_blocks * self.pages_for(block_size)
        return k_blocks * self.seek_ms + pages * self.transfer_ms

    def estimate_layered(self, p_tuples: int) -> float:
        """Eq. (3): layered-index point-read cost in ms."""
        return p_tuples * (self.seek_ms + self.transfer_ms)

    # -- optimizer extensions (join / sort formulas over eqs 1-3) ---------

    def estimate_sort(self, rows: int) -> float:
        """In-memory sort: n log2 n comparisons priced per tuple."""
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows) * self.cpu_tuple_ms

    def estimate_hash_join(
        self,
        k_blocks: int,
        block_size: int,
        build_rows: int,
        probe_rows: int,
    ) -> float:
        """One-pass hash join: eq. (2) block reads plus CPU terms.

        Both sides come out of the same k candidate blocks (one
        sequential pass); building the hash table costs two tuple
        touches per build row, probing one per probe row - so the
        smaller side is the cheaper build input.
        """
        io = self.estimate_bitmap(k_blocks, block_size)
        return io + (2 * build_rows + probe_rows) * self.cpu_tuple_ms

    def estimate_merge_join(self, left_tuples: int, right_tuples: int) -> float:
        """Algorithm 2/3 sort-merge: eq. (3) point reads on each side's
        estimated joining tuples, plus one merge step per tuple."""
        tuples = left_tuples + right_tuples
        return tuples * (self.seek_ms + self.transfer_ms + self.cpu_tuple_ms)

    def tracker(self) -> "CostTracker":
        """A fresh scoped tracker priced with this model's timings."""
        return CostTracker(model=self)


@dataclasses.dataclass
class CostTracker:
    """Per-scope (usually per-query) I/O counters.

    The block store charges every read to its global :class:`CostModel`
    *and* to any trackers passed along with the read, so two interleaved
    queries each see exactly their own I/O instead of a shared
    snapshot-delta that double-counts the other query's reads.  Pricing
    comes from the owning model, so a tracker's ``elapsed_ms`` is
    directly comparable with the closed-form estimates.
    """

    model: CostModel
    seeks: int = 0
    page_transfers: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record_read(self, nbytes: int, seeks: int = 1) -> None:
        self.seeks += seeks
        self.page_transfers += self.model.pages_for(nbytes)
        self.bytes_read += nbytes

    def record_write(self, nbytes: int, seeks: int = 0) -> None:
        self.seeks += seeks
        self.bytes_written += nbytes

    def elapsed_ms(self) -> float:
        return (self.seeks * self.model.seek_ms
                + self.page_transfers * self.model.transfer_ms)

    def snapshot(self) -> "CostSnapshot":
        return CostSnapshot(
            seeks=self.seeks,
            page_transfers=self.page_transfers,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            elapsed_ms=self.elapsed_ms(),
        )

    def reset(self) -> None:
        self.seeks = 0
        self.page_transfers = 0
        self.bytes_read = 0
        self.bytes_written = 0


@dataclasses.dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of the counters, for before/after deltas."""

    seeks: int
    page_transfers: int
    bytes_read: int
    bytes_written: int
    elapsed_ms: float

    def delta(self, earlier: "CostSnapshot") -> "CostSnapshot":
        """This snapshot minus an earlier one."""
        return CostSnapshot(
            seeks=self.seeks - earlier.seeks,
            page_transfers=self.page_transfers - earlier.page_transfers,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            elapsed_ms=self.elapsed_ms - earlier.elapsed_ms,
        )
