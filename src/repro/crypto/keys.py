"""Key pairs and participant identities.

Every SEBDB participant (charity, school, orderer, ...) owns a
:class:`KeyPair`.  The compressed public key doubles as the participant's
on-chain identity; a short hex *address* derived from it is what appears in
the ``SenID`` system column.
"""

from __future__ import annotations

import dataclasses
import hashlib
import secrets  # sebdb: allow[determinism] real keygen entropy; sims use from_seed

from ..common.errors import SignatureError
from . import group, schnorr

ADDRESS_LENGTH = 20  # bytes of the pubkey hash used as an address


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A Schnorr key pair plus derived identity."""

    private_key: int
    public_key: bytes

    @classmethod
    def generate(cls) -> "KeyPair":
        """Fresh random key pair."""
        d = secrets.randbelow(group.N - 1) + 1
        return cls._from_scalar(d)

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "KeyPair":
        """Deterministic key pair for tests and reproducible benchmarks."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        d = int.from_bytes(hashlib.sha256(b"keyseed" + seed).digest(), "big")
        d = d % (group.N - 1) + 1
        return cls._from_scalar(d)

    @classmethod
    def _from_scalar(cls, d: int) -> "KeyPair":
        if not 0 < d < group.N:
            raise SignatureError("private scalar out of range")
        public = group.serialize_point(group.scalar_mul(d))
        return cls(private_key=d, public_key=public)

    @property
    def address(self) -> str:
        """Short hex identity derived from the public key."""
        return address_of(self.public_key)

    def sign(self, message: bytes) -> bytes:
        return schnorr.sign(self.private_key, message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return schnorr.verify(self.public_key, message, signature)


def address_of(public_key: bytes) -> str:
    """Derive the hex address of a compressed public key."""
    return hashlib.sha256(public_key).digest()[:ADDRESS_LENGTH].hex()
