"""Deterministic Schnorr signatures over secp256k1.

Scheme (BIP-340 flavoured, without x-only keys for simplicity):

* key pair: ``d`` (scalar), ``Q = d*G``
* sign(m):  ``k = H(d || m) mod n``; ``R = k*G``;
  ``e = H(R || Q || m) mod n``; ``s = k + e*d mod n``; signature = (R, s)
* verify:   ``s*G == R + e*Q``

Deterministic nonces make signing reproducible, which the test-suite and
benchmark harness rely on.
"""

from __future__ import annotations

from ..common.errors import SignatureError
from ..common.hashing import sha256
from . import group

SIGNATURE_SIZE = 33 + 32  # compressed R point + 32-byte scalar s


def _hash_to_scalar(*parts: bytes) -> int:
    return int.from_bytes(sha256(b"".join(parts)), "big") % group.N


def sign(private_key: int, message: bytes) -> bytes:
    """Sign ``message``; returns a 65-byte signature ``R || s``."""
    if not 0 < private_key < group.N:
        raise SignatureError("private key out of range")
    d_bytes = private_key.to_bytes(32, "big")
    k = _hash_to_scalar(b"nonce", d_bytes, message)
    if k == 0:  # pragma: no cover - probability ~2^-256
        k = 1
    r_point = group.scalar_mul(k)
    q_point = group.scalar_mul(private_key)
    e = _hash_to_scalar(
        group.serialize_point(r_point), group.serialize_point(q_point), message
    )
    s = (k + e * private_key) % group.N
    return group.serialize_point(r_point) + s.to_bytes(32, "big")


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """True iff ``signature`` is a valid signature of ``message``.

    ``public_key`` is the compressed SEC1 encoding of ``Q``.
    Malformed inputs return ``False`` rather than raising, so callers can
    treat any bad signature uniformly.
    """
    if len(signature) != SIGNATURE_SIZE:
        return False
    try:
        r_point = group.deserialize_point(signature[:33])
        q_point = group.deserialize_point(public_key)
    except SignatureError:
        return False
    if r_point.is_identity or q_point.is_identity:
        return False
    s = int.from_bytes(signature[33:], "big")
    if s >= group.N:
        return False
    e = _hash_to_scalar(signature[:33], public_key, message)
    lhs = group.scalar_mul(s)
    rhs = group.point_add(r_point, group.scalar_mul(e, q_point))
    return lhs == rhs
