"""Pure-Python Schnorr signatures over secp256k1 and key management."""

from .batch import BatchItem, BatchVerification, verify_batch
from .group import (
    GENERATOR,
    IDENTITY,
    Point,
    is_on_curve,
    multi_scalar_mul,
    point_add,
    scalar_mul,
)
from .keys import ADDRESS_LENGTH, KeyPair, address_of
from .schnorr import SIGNATURE_SIZE, sign, verify

__all__ = [
    "ADDRESS_LENGTH",
    "BatchItem",
    "BatchVerification",
    "GENERATOR",
    "IDENTITY",
    "KeyPair",
    "Point",
    "SIGNATURE_SIZE",
    "address_of",
    "is_on_curve",
    "multi_scalar_mul",
    "point_add",
    "scalar_mul",
    "sign",
    "verify",
    "verify_batch",
]
