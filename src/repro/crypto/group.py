"""Elliptic-curve group arithmetic over secp256k1.

A minimal, dependency-free implementation of the secp256k1 short
Weierstrass curve (y^2 = x^3 + 7 over F_p) sufficient for Schnorr
signatures: point addition, doubling, scalar multiplication (double-and-add
over Jacobian-free affine coordinates with modular inverses via
:func:`pow`), and compressed-point (de)serialization.

This is *real* public-key cryptography, not a mock - signatures produced by
one node genuinely verify (or fail to) on another.  It is not constant-time
and must not be used outside this reproduction.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from ..common.errors import SignatureError

#: secp256k1 parameters (SEC 2).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class Point(NamedTuple):
    """Affine curve point; ``None`` coordinates encode the identity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_identity(self) -> bool:
        return self.x is None


IDENTITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """True iff ``point`` satisfies the curve equation (or is identity)."""
    if point.is_identity:
        return True
    x, y = point.x, point.y
    assert x is not None and y is not None
    return (y * y - (x * x * x + A * x + B)) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Group addition on the curve."""
    if p1.is_identity:
        return p2
    if p2.is_identity:
        return p1
    x1, y1 = p1.x, p1.y
    x2, y2 = p2.x, p2.y
    assert None not in (x1, y1, x2, y2)
    if x1 == x2 and (y1 + y2) % P == 0:
        return IDENTITY
    if p1 == p2:
        slope = (3 * x1 * x1 + A) * pow(2 * y1, P - 2, P) % P
    else:
        slope = (y2 - y1) * pow(x2 - x1, P - 2, P) % P
    x3 = (slope * slope - x1 - x2) % P
    y3 = (slope * (x1 - x3) - y1) % P
    return Point(x3, y3)


def point_neg(point: Point) -> Point:
    if point.is_identity:
        return point
    assert point.x is not None and point.y is not None
    return Point(point.x, (-point.y) % P)


# -- Jacobian-coordinate fast path -------------------------------------------
#
# Affine point_add pays one modular inversion (a full pow(x, P-2, P))
# per addition, which made every scalar multiplication cost hundreds of
# inversions.  Scalar and multi-scalar multiplication therefore run on
# Jacobian triples (X, Y, Z) ~ (X/Z^2, Y/Z^3) internally - a handful of
# modular multiplications per step and exactly ONE inversion at the end.
# The public API still speaks affine :class:`Point` and produces
# bit-identical results.

#: Jacobian identity (any triple with Z == 0)
_JAC_IDENTITY = (0, 1, 0)


def _jac_from(point: Point) -> tuple[int, int, int]:
    if point.is_identity:
        return _JAC_IDENTITY
    assert point.x is not None and point.y is not None
    return (point.x, point.y, 1)


def _jac_to_affine(p: tuple[int, int, int]) -> Point:
    x, y, z = p
    if z == 0:
        return IDENTITY
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return Point(x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jac_double(p: tuple[int, int, int]) -> tuple[int, int, int]:
    x1, y1, z1 = p
    if z1 == 0 or y1 == 0:
        return _JAC_IDENTITY
    a = x1 * x1 % P
    b = y1 * y1 % P
    c = b * b % P
    d = 2 * ((x1 + b) * (x1 + b) - a - c) % P
    e = 3 * a % P
    f = e * e % P
    x3 = (f - 2 * d) % P
    y3 = (e * (d - x3) - 8 * c) % P
    z3 = 2 * y1 * z1 % P
    return (x3, y3, z3)


def _jac_add(
    p: tuple[int, int, int], q: tuple[int, int, int]
) -> tuple[int, int, int]:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 * z2z2 % P
    s2 = y2 * z1 * z1z1 % P
    if u1 == u2:
        if s1 != s2:
            return _JAC_IDENTITY
        return _jac_double(p)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    x3 = (r * r - j - 2 * v) % P
    y3 = (r * (v - x3) - 2 * s1 * j) % P
    z3 = ((z1 + z2) * (z1 + z2) - z1z1 - z2z2) % P * h % P
    return (x3, y3, z3)


def scalar_mul(k: int, point: Point = GENERATOR) -> Point:
    """Double-and-add scalar multiplication ``k * point``."""
    k %= N
    if k == 0 or point.is_identity:
        return IDENTITY
    result = _JAC_IDENTITY
    addend = _jac_from(point)
    while k:
        if k & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        k >>= 1
    return _jac_to_affine(result)


def multi_scalar_mul(terms: Sequence[tuple[int, Point]]) -> Point:
    """``sum(k_i * P_i)`` via Pippenger's bucket method.

    A length-n multi-scalar multiplication costs roughly
    ``(bits / log2 n) * (n + 2^window)`` point additions instead of the
    ``O(bits * n)`` of n independent double-and-add runs, which is what
    makes batch signature verification cheaper than verifying each
    signature alone.  Exact over any scalar widths (mixed 128-bit
    randomizer and 256-bit coefficient terms are fine); falls back to
    plain :func:`scalar_mul` for tiny inputs where bucketing cannot win.
    """
    reduced = [(k % N, p) for k, p in terms if k % N and not p.is_identity]
    if not reduced:
        return IDENTITY
    if len(reduced) <= 2:
        acc = IDENTITY
        for k, p in reduced:
            acc = point_add(acc, scalar_mul(k, p))
        return acc
    window = min(12, max(2, len(reduced).bit_length() - 1))
    max_bits = max(k.bit_length() for k, _ in reduced)
    num_windows = (max_bits + window - 1) // window
    mask = (1 << window) - 1
    jac_points = [_jac_from(p) for _, p in reduced]
    result = _JAC_IDENTITY
    for w in range(num_windows - 1, -1, -1):
        if result[2]:
            for _ in range(window):
                result = _jac_double(result)
        buckets: list[Optional[tuple[int, int, int]]] = [None] * mask
        shift = w * window
        for (k, _), jac in zip(reduced, jac_points):
            digit = (k >> shift) & mask
            if digit:
                held = buckets[digit - 1]
                buckets[digit - 1] = jac if held is None else _jac_add(held, jac)
        # fold buckets highest-first: sum(digit * bucket[digit]) with one
        # running partial sum instead of a scalar_mul per bucket
        running = _JAC_IDENTITY
        acc = _JAC_IDENTITY
        for index in range(mask - 1, -1, -1):
            bucket = buckets[index]
            if bucket is not None:
                running = _jac_add(running, bucket)
            if running[2]:
                acc = _jac_add(acc, running)
        result = _jac_add(result, acc)
    return _jac_to_affine(result)


def serialize_point(point: Point) -> bytes:
    """Compressed SEC1 encoding (33 bytes; 0x00*33 for identity)."""
    if point.is_identity:
        return b"\x00" * 33
    assert point.x is not None and point.y is not None
    prefix = b"\x03" if point.y & 1 else b"\x02"
    return prefix + point.x.to_bytes(32, "big")


def deserialize_point(data: bytes) -> Point:
    """Inverse of :func:`serialize_point`; validates curve membership."""
    if len(data) != 33:
        raise SignatureError(f"bad point encoding length {len(data)}")
    if data == b"\x00" * 33:
        return IDENTITY
    prefix, xbytes = data[0], data[1:]
    if prefix not in (2, 3):
        raise SignatureError(f"bad point prefix {prefix:#x}")
    x = int.from_bytes(xbytes, "big")
    if x >= P:
        raise SignatureError("point x coordinate out of range")
    # y^2 = x^3 + 7; sqrt via p % 4 == 3 shortcut
    y_sq = (pow(x, 3, P) + A * x + B) % P
    y = pow(y_sq, (P + 1) // 4, P)
    if (y * y) % P != y_sq:
        raise SignatureError("x coordinate not on curve")
    if bool(y & 1) != (prefix == 3):
        y = P - y
    point = Point(x, y)
    if not is_on_curve(point):  # pragma: no cover - defensive
        raise SignatureError("decoded point not on curve")
    return point
