"""Elliptic-curve group arithmetic over secp256k1.

A minimal, dependency-free implementation of the secp256k1 short
Weierstrass curve (y^2 = x^3 + 7 over F_p) sufficient for Schnorr
signatures: point addition, doubling, scalar multiplication (double-and-add
over Jacobian-free affine coordinates with modular inverses via
:func:`pow`), and compressed-point (de)serialization.

This is *real* public-key cryptography, not a mock - signatures produced by
one node genuinely verify (or fail to) on another.  It is not constant-time
and must not be used outside this reproduction.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..common.errors import SignatureError

#: secp256k1 parameters (SEC 2).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


class Point(NamedTuple):
    """Affine curve point; ``None`` coordinates encode the identity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_identity(self) -> bool:
        return self.x is None


IDENTITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """True iff ``point`` satisfies the curve equation (or is identity)."""
    if point.is_identity:
        return True
    x, y = point.x, point.y
    assert x is not None and y is not None
    return (y * y - (x * x * x + A * x + B)) % P == 0


def point_add(p1: Point, p2: Point) -> Point:
    """Group addition on the curve."""
    if p1.is_identity:
        return p2
    if p2.is_identity:
        return p1
    x1, y1 = p1.x, p1.y
    x2, y2 = p2.x, p2.y
    assert None not in (x1, y1, x2, y2)
    if x1 == x2 and (y1 + y2) % P == 0:
        return IDENTITY
    if p1 == p2:
        slope = (3 * x1 * x1 + A) * pow(2 * y1, P - 2, P) % P
    else:
        slope = (y2 - y1) * pow(x2 - x1, P - 2, P) % P
    x3 = (slope * slope - x1 - x2) % P
    y3 = (slope * (x1 - x3) - y1) % P
    return Point(x3, y3)


def point_neg(point: Point) -> Point:
    if point.is_identity:
        return point
    assert point.x is not None and point.y is not None
    return Point(point.x, (-point.y) % P)


def scalar_mul(k: int, point: Point = GENERATOR) -> Point:
    """Double-and-add scalar multiplication ``k * point``."""
    k %= N
    result = IDENTITY
    addend = point
    while k:
        if k & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        k >>= 1
    return result


def serialize_point(point: Point) -> bytes:
    """Compressed SEC1 encoding (33 bytes; 0x00*33 for identity)."""
    if point.is_identity:
        return b"\x00" * 33
    assert point.x is not None and point.y is not None
    prefix = b"\x03" if point.y & 1 else b"\x02"
    return prefix + point.x.to_bytes(32, "big")


def deserialize_point(data: bytes) -> Point:
    """Inverse of :func:`serialize_point`; validates curve membership."""
    if len(data) != 33:
        raise SignatureError(f"bad point encoding length {len(data)}")
    if data == b"\x00" * 33:
        return IDENTITY
    prefix, xbytes = data[0], data[1:]
    if prefix not in (2, 3):
        raise SignatureError(f"bad point prefix {prefix:#x}")
    x = int.from_bytes(xbytes, "big")
    if x >= P:
        raise SignatureError("point x coordinate out of range")
    # y^2 = x^3 + 7; sqrt via p % 4 == 3 shortcut
    y_sq = (pow(x, 3, P) + A * x + B) % P
    y = pow(y_sq, (P + 1) // 4, P)
    if (y * y) % P != y_sq:
        raise SignatureError("x coordinate not on curve")
    if bool(y & 1) != (prefix == 3):
        y = P - y
    point = Point(x, y)
    if not is_on_curve(point):  # pragma: no cover - defensive
        raise SignatureError("decoded point not on curve")
    return point
