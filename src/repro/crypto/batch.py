"""Batched Schnorr verification (random linear combination).

One aggregate curve equation replaces per-signature verification: given
signatures ``(R_i, s_i)`` over messages ``m_i`` under keys ``Q_i``, draw
randomizers ``a_i`` and check

    (sum a_i * s_i) * G  ==  sum a_i * R_i  +  sum (a_i * e_i) * Q_i

which holds whenever every signature is valid and fails with probability
about ``2^-128`` when any is forged - the random coefficients stop a
forger from cancelling one bad term against another.  The whole check
collapses into a single multi-scalar multiplication
(:func:`repro.crypto.group.multi_scalar_mul`), and terms sharing a
public key fold into one ``Q`` term, so a batch verifies several times
faster than its signatures would individually.

Determinism: the randomizers come from a **seeded** ``random.Random``
whose seed is derived from the batch content itself (or passed
explicitly), so verification replays bit-for-bit on every replica - the
repo-wide determinism analysis rule stays clean - while a signer still
cannot predict the coefficients without first committing to the batch
bytes they are hashed from.

When the aggregate fails, the batch is **bisected**: each half re-checks
as its own aggregate (fresh deterministic randomizers per span) and
small spans fall back to per-signature checks, so the caller always
learns exactly which signatures are bad.  An all-valid batch costs one
aggregate check; a batch with k bad signatures costs O(k log n) extra
span checks - still far cheaper than n singles for the common
mostly-valid case, and at worst about twice the serial work when an
adversary poisons everything.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from ..common.errors import SignatureError
from ..common.hashing import sha256
from . import group, schnorr

#: one verification request: (public_key, message, signature) - the same
#: triple :func:`repro.crypto.schnorr.verify` takes
BatchItem = Tuple[bytes, bytes, bytes]

#: randomizer width in bits: 128-bit coefficients keep the forgery
#: probability negligible while halving the width of every R term in
#: the multi-scalar multiplication
RANDOMIZER_BITS = 128

#: spans at or below this size skip bisection and check singly - two
#: aggregate probes cannot beat four direct checks
_BISECT_FLOOR = 4


@dataclasses.dataclass
class BatchVerification:
    """Outcome of one :func:`verify_batch` call."""

    #: per-item validity, aligned with the input order
    valid: List[bool]
    #: aggregate (random-linear-combination) checks performed
    aggregate_checks: int = 0
    #: per-signature fallback checks performed during bisection
    single_checks: int = 0

    @property
    def all_valid(self) -> bool:
        return all(self.valid)


#: parsed item: (input index, s, R, e, Q, public key bytes)
_Parsed = Tuple[int, int, group.Point, int, group.Point, bytes]


def _parse_item(index: int, item: BatchItem) -> Optional[_Parsed]:
    """Screen one item exactly as :func:`schnorr.verify` would.

    Malformed inputs (bad lengths, off-curve points, identity points,
    out-of-range scalars) are rejected here so they can never poison the
    aggregate equation for well-formed neighbours.
    """
    public_key, message, signature = item
    if len(signature) != schnorr.SIGNATURE_SIZE:
        return None
    try:
        r_point = group.deserialize_point(signature[:33])
        q_point = group.deserialize_point(public_key)
    except SignatureError:
        return None
    if r_point.is_identity or q_point.is_identity:
        return None
    s = int.from_bytes(signature[33:], "big")
    if s >= group.N:
        return None
    e = schnorr._hash_to_scalar(signature[:33], public_key, message)
    return (index, s, r_point, e, q_point, public_key)


def derive_seed(items: Sequence[BatchItem]) -> int:
    """Deterministic randomizer seed bound to the batch content."""
    rolling = sha256(b"sebdb-batch-verify")
    for public_key, message, signature in items:
        rolling = sha256(rolling + sha256(public_key) + sha256(message)
                         + sha256(signature))
    return int.from_bytes(rolling, "big")


def _aggregate_holds(entries: Sequence[_Parsed], rng: random.Random) -> bool:
    """One random-linear-combination probe over ``entries``."""
    s_coefficient = 0
    terms: list[tuple[int, group.Point]] = []
    #: public key -> (folded coefficient, negated point); insertion
    #: ordered, so the term order is deterministic
    q_terms: dict[bytes, list] = {}
    for _index, s, r_point, e, q_point, public_key in entries:
        a = rng.getrandbits(RANDOMIZER_BITS) | 1
        s_coefficient = (s_coefficient + a * s) % group.N
        terms.append((a, group.point_neg(r_point)))
        held = q_terms.get(public_key)
        if held is None:
            q_terms[public_key] = [a * e % group.N, group.point_neg(q_point)]
        else:
            held[0] = (held[0] + a * e) % group.N
    terms.append((s_coefficient, group.GENERATOR))
    for coefficient, negated_q in q_terms.values():
        terms.append((coefficient, negated_q))
    return group.multi_scalar_mul(terms).is_identity


def _check_single(entry: _Parsed) -> bool:
    """Direct ``s*G == R + e*Q`` check of one parsed signature."""
    _index, s, r_point, e, q_point, _public_key = entry
    lhs = group.scalar_mul(s)
    rhs = group.point_add(r_point, group.scalar_mul(e, q_point))
    return lhs == rhs


def _verify_span(
    entries: Sequence[_Parsed], seed: int, outcome: BatchVerification
) -> None:
    """Recursive bisection: aggregate first, split on failure."""
    if len(entries) <= 1:
        for entry in entries:
            outcome.single_checks += 1  # sebdb: allow[concurrency] outcome is the chunk-local accumulator created by this map() task's verify_batch call; never shared across workers
            outcome.valid[entry[0]] = _check_single(entry)
        return
    # span-specific sub-seed: every probe draws fresh coefficients, so a
    # forger cannot target the recursion with a single lucky cancellation
    rng = random.Random(f"{seed}:{entries[0][0]}:{len(entries)}")
    outcome.aggregate_checks += 1  # sebdb: allow[concurrency] outcome is the chunk-local accumulator created by this map() task's verify_batch call; never shared across workers
    if _aggregate_holds(entries, rng):
        for entry in entries:
            outcome.valid[entry[0]] = True
        return
    if len(entries) <= _BISECT_FLOOR:
        for entry in entries:
            outcome.single_checks += 1  # sebdb: allow[concurrency] outcome is the chunk-local accumulator created by this map() task's verify_batch call; never shared across workers
            outcome.valid[entry[0]] = _check_single(entry)
        return
    mid = len(entries) // 2
    _verify_span(entries[:mid], seed, outcome)
    _verify_span(entries[mid:], seed, outcome)


def verify_batch(
    items: Sequence[BatchItem], seed: Optional[int] = None
) -> BatchVerification:
    """Verify a whole batch of Schnorr signatures at once.

    Returns a :class:`BatchVerification` whose ``valid`` list is aligned
    with ``items`` and agrees exactly with calling
    :func:`repro.crypto.schnorr.verify` on each triple.  ``seed``
    overrides the content-derived randomizer seed (tests; replicas must
    all pass the same value or none).
    """
    outcome = BatchVerification(valid=[False] * len(items))
    parsed = [
        entry
        for entry in (_parse_item(i, item) for i, item in enumerate(items))
        if entry is not None
    ]
    if not parsed:
        return outcome
    if seed is None:
        seed = derive_seed(items)
    _verify_span(parsed, seed, outcome)
    return outcome
