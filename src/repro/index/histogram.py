"""Equal-depth histograms.

For a *continuous* attribute the first level of the layered index maps
each block to the subset of histogram buckets its values fall in.  The
histogram is built once by sampling historical transactions when the index
is created (section IV-B); its depth (bucket count) trades precision for
bitmap width and is configurable (Fig 11 uses 100).

Bucket i covers ``(bound[i-1], bound[i]]`` with open-ended first and last
buckets: ``(-inf, k_1], (k_1, k_2] ... (k_p, +inf)``.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from ..common.errors import IndexError_


class EqualDepthHistogram:
    """Equal-depth (equi-height) histogram over a sample of values."""

    def __init__(self, bounds: Sequence[Any]) -> None:
        self._bounds = list(bounds)
        if any(self._bounds[i] > self._bounds[i + 1] for i in range(len(self._bounds) - 1)):
            raise IndexError_("histogram bounds must be non-decreasing")

    @classmethod
    def from_sample(cls, sample: Sequence[Any], depth: int) -> "EqualDepthHistogram":
        """Build ``depth`` buckets so each holds ~len(sample)/depth values."""
        if depth < 1:
            raise IndexError_("histogram depth must be >= 1")
        values = sorted(v for v in sample if v is not None)
        if not values or depth == 1:
            return cls([])
        bounds = []
        for i in range(1, depth):
            pos = i * len(values) // depth
            pos = min(pos, len(values) - 1)
            bounds.append(values[pos])
        # collapse duplicate bounds (heavily skewed samples)
        deduped: list[Any] = []
        for bound in bounds:
            if not deduped or bound > deduped[-1]:
                deduped.append(bound)
        return cls(deduped)

    @property
    def num_buckets(self) -> int:
        return len(self._bounds) + 1

    @property
    def bounds(self) -> list[Any]:
        return list(self._bounds)

    def bucket_of(self, value: Any) -> int:
        """Index of the bucket containing ``value``.

        Bucket i is ``(bounds[i-1], bounds[i]]``; values equal to a bound
        belong to the lower bucket.
        """
        return bisect.bisect_left(self._bounds, value)

    def buckets_overlapping(self, low: Any, high: Any) -> range:
        """Bucket indices whose range intersects ``[low, high]``.

        ``None`` bounds are open.  Used to turn a range predicate into a
        bucket bitmap for the level-1 AND step.
        """
        first = 0 if low is None else self.bucket_of(low)
        last = self.num_buckets - 1 if high is None else self.bucket_of(high)
        return range(first, last + 1)

    def bucket_range(self, index: int) -> tuple[Any, Any]:
        """(lower, upper] bounds of bucket ``index``; ``None`` = open."""
        if not 0 <= index < self.num_buckets:
            raise IndexError_(f"bucket {index} out of range")
        lower = self._bounds[index - 1] if index > 0 else None
        upper = self._bounds[index] if index < len(self._bounds) else None
        return lower, upper
