"""Table-level bitmap index.

Operation (ii) of section IV-B: find all blocks holding tuples of one
table.  One bitmap per table name; bit i is set when block i contains at
least one transaction of that table.  When a new table appears a new
bitmap is added; when a block arrives the bitmaps of every table present
in it get their new bit set.

The same structure optionally tracks ``SenID`` ("the index can also be
created on SenID for tracking query").
"""

from __future__ import annotations

from typing import Iterable

from ..model.block import Block
from .bitmap import Bitmap


class TableBitmapIndex:
    """Maps a key (table name or sender id) to its block-presence bitmap."""

    def __init__(self, track_senders: bool = False) -> None:
        self._tables: dict[str, Bitmap] = {}
        self._senders: dict[str, Bitmap] = {}
        self._counts: dict[str, int] = {}
        self._track_senders = track_senders
        self._num_blocks = 0

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def add_block(self, block: Block) -> None:
        """Set bit ``block.height`` on every table (and sender) present."""
        bid = block.height
        for tname in block.table_names():
            self._tables.setdefault(tname, Bitmap()).set(bid)
        for tx in block.transactions:
            self._counts[tx.tname] = self._counts.get(tx.tname, 0) + 1
            if self._track_senders:
                self._senders.setdefault(tx.senid, Bitmap()).set(bid)
        self._num_blocks = max(self._num_blocks, bid + 1)

    def blocks_for_table(self, tname: str) -> Bitmap:
        """Bitmap of blocks containing table ``tname`` (copy; empty if none)."""
        bitmap = self._tables.get(tname.lower())
        return bitmap.copy() if bitmap is not None else Bitmap()

    def blocks_for_sender(self, senid: str) -> Bitmap:
        bitmap = self._senders.get(senid)
        return bitmap.copy() if bitmap is not None else Bitmap()

    def blocks_for_tables(self, tnames: Iterable[str]) -> Bitmap:
        """Union over several tables."""
        result = Bitmap()
        for tname in tnames:
            result = result | self.blocks_for_table(tname)
        return result

    def tuple_count(self, tname: str) -> int:
        """Total transactions of ``tname`` across the chain."""
        return self._counts.get(tname.lower(), 0)

    def selectivity(self, tname: str) -> float:
        """Fraction of blocks containing the table - the k/n of eq. (2)."""
        if not self._num_blocks:
            return 0.0
        return len(self.blocks_for_table(tname)) / self._num_blocks
