"""The three SEBDB index structures plus the B+-tree they build on."""

from .bitmap import Bitmap
from .block_index import BlockEntry, BlockIndex
from .bptree import BPlusTree
from .histogram import EqualDepthHistogram
from .layered import LayeredIndex, ranges_intersect
from .manager import IndexManager, app_extractor, system_extractor
from .table_index import TableBitmapIndex

__all__ = [
    "BPlusTree",
    "Bitmap",
    "BlockEntry",
    "BlockIndex",
    "EqualDepthHistogram",
    "IndexManager",
    "LayeredIndex",
    "TableBitmapIndex",
    "app_extractor",
    "ranges_intersect",
    "system_extractor",
]
