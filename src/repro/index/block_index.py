"""Block-level B+-tree index on ``(bid, tid, Ts)``.

Operation (i) of section IV-B: locate a block given a block id, a
transaction id, or a timestamp.  Because blocks are appended in order, for
any two blocks b_i earlier than b_j we have bid, first-tid and Ts all
smaller - so one tree keyed by bid with (first_tid, Ts, location) payloads
answers all three lookups via floor searches, and its leaves stay full
(keys arrive strictly increasing).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..common.errors import IndexError_
from ..model.block import Block
from ..storage.segment import BlockLocation
from .bitmap import Bitmap
from .bptree import BPlusTree


@dataclasses.dataclass(frozen=True)
class BlockEntry:
    """Payload per block: tid range, timestamps and physical location.

    ``min_ts``/``max_ts`` bound the *transaction* send timestamps inside
    the block, which is what query time windows range over; ``timestamp``
    is the block's packaging time.
    """

    bid: int
    first_tid: int
    last_tid: int
    timestamp: int
    min_ts: int
    max_ts: int
    location: BlockLocation


class BlockIndex:
    """The chain-wide block locator tree."""

    def __init__(self, order: int = 32) -> None:
        # three trees share BlockEntry payloads; each is append-only with
        # monotone keys so leaves stay full (paper: "leaf nodes are kept full")
        self._by_bid: BPlusTree = BPlusTree(order)
        self._by_tid: BPlusTree = BPlusTree(order)
        self._by_ts: BPlusTree = BPlusTree(order)
        self._entries: list[BlockEntry] = []
        self._last: Optional[BlockEntry] = None

    def __len__(self) -> int:
        return len(self._by_bid)

    def add_block(self, block: Block, location: BlockLocation) -> None:
        """Register a freshly appended block."""
        if not block.transactions:
            entry = BlockEntry(
                bid=block.height,
                first_tid=-1,
                last_tid=-1,
                timestamp=block.timestamp,
                min_ts=block.timestamp,
                max_ts=block.timestamp,
                location=location,
            )
        else:
            tx_ts = [tx.ts for tx in block.transactions]
            entry = BlockEntry(
                bid=block.height,
                first_tid=block.first_tid,
                last_tid=block.last_tid,
                timestamp=block.timestamp,
                min_ts=min(tx_ts),
                max_ts=max(tx_ts),
                location=location,
            )
        if self._last is not None:
            if entry.bid <= self._last.bid:
                raise IndexError_(
                    f"block ids must be increasing: {entry.bid} after {self._last.bid}"
                )
            if entry.timestamp < self._last.timestamp:
                raise IndexError_(
                    f"block timestamps must be non-decreasing: "
                    f"{entry.timestamp} after {self._last.timestamp}"
                )
        self._by_bid.insert(entry.bid, entry)
        if entry.first_tid >= 0:
            self._by_tid.insert(entry.first_tid, entry)
        # timestamps may repeat across blocks; B+-tree handles duplicates
        self._by_ts.insert((entry.timestamp, entry.bid), entry)
        self._entries.append(entry)
        self._last = entry

    # -- the three lookups of operation (i) -----------------------------------

    def by_bid(self, bid: int) -> Optional[BlockEntry]:
        """Block with exactly this block id."""
        hits = self._by_bid.search(bid)
        return hits[0] if hits else None

    def by_tid(self, tid: int) -> Optional[BlockEntry]:
        """Block containing the transaction with global id ``tid``."""
        found = self._by_tid.floor(tid)
        if found is None:
            return None
        entry: BlockEntry = found[1][0]
        if entry.last_tid >= 0 and tid > entry.last_tid:
            return None
        return entry

    def by_timestamp(self, ts: int) -> Optional[BlockEntry]:
        """Latest block with block timestamp <= ``ts``."""
        found = self._by_ts.floor((ts, float("inf")))
        if found is None:
            return None
        return found[1][0]

    # -- time windows (feeds Algorithms 1-3) ----------------------------------

    def window_bitmap(self, start_ts: Optional[int], end_ts: Optional[int]) -> Bitmap:
        """Bitmap of blocks that can hold transactions with Ts in [s, e].

        A block qualifies when its [min_ts, max_ts] transaction-timestamp
        range overlaps the window; ``None`` bounds are open.  This is the
        ``BI(c, e)`` step of Algorithms 1-3.
        """
        bitmap = Bitmap()
        for entry in self._entries:
            if start_ts is not None and entry.max_ts < start_ts:
                continue
            if end_ts is not None and entry.min_ts > end_ts:
                continue
            bitmap.set(entry.bid)
        return bitmap

    def entry(self, bid: int) -> Optional[BlockEntry]:
        if 0 <= bid < len(self._entries):
            return self._entries[bid]
        return None

    def all_blocks_bitmap(self) -> Bitmap:
        """Bitmap selecting every block currently indexed."""
        return Bitmap.range(0, len(self._by_bid))
