"""In-memory B+-tree.

Serves three roles in SEBDB:

* the **block-level index** on ``(bid, tid, Ts)`` (one tree per chain),
* the **second level of the layered index** (one tree per block, built by
  bulk loading when the block is appended - no rebalancing afterwards,
  which is the paper's point (i) about layered-index benefits),
* the skeleton that the Merkle B-tree (:mod:`repro.mht.mbtree`) reuses.

Duplicate keys are supported: each key maps to a list of payloads.  Leaves
are chained for range scans.  The tree is append-friendly (rightmost-leaf
inserts of monotone keys keep leaves full) and supports classic top-down
search; deletion is deliberately absent because blocks are immutable.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..common.errors import IndexError_


class _Node:
    """Internal or leaf node."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []      # internal nodes only
        self.values: list[list[Any]] = []    # leaves only; parallel to keys
        self.next_leaf: Optional[_Node] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<{kind} keys={self.keys!r}>"


class BPlusTree:
    """A B+-tree with order ``order`` (max children per internal node)."""

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise IndexError_("B+-tree order must be at least 3")
        self._order = order
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._size

    @property
    def order(self) -> int:
        return self._order

    @property
    def height(self) -> int:
        return self._height

    # -- construction -------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates accumulate)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: Any, value: Any) -> Optional[tuple[Any, _Node]]:
        if node.is_leaf:
            idx = _lower_bound(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [value])
            self._size += 1
            if len(node.keys) >= self._order:
                return self._split_leaf(node)
            return None
        idx = _upper_bound(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.children) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Node) -> tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next_leaf = leaf.next_leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    @classmethod
    def bulk_load(
        cls, pairs: Sequence[tuple[Any, Any]], order: int = 32
    ) -> "BPlusTree":
        """Build a tree from (key, value) pairs in one bottom-up pass.

        Input need not be sorted or unique; duplicates are grouped.  Leaves
        come out packed full, mirroring the paper's "a B+-tree is created
        for the block in a bulk loading way".
        """
        tree = cls(order=order)
        if not pairs:
            return tree
        grouped: dict[Any, list[Any]] = {}
        for key, value in pairs:
            grouped.setdefault(key, []).append(value)
        keys = sorted(grouped)
        tree._size = len(keys)
        # build packed leaves
        per_leaf = max(order - 1, 1)
        leaves: list[_Node] = []
        for start in range(0, len(keys), per_leaf):
            leaf = _Node(is_leaf=True)
            leaf.keys = keys[start : start + per_leaf]
            leaf.values = [grouped[k] for k in leaf.keys]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        # build internal levels bottom-up
        level: list[_Node] = leaves
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), order):
                group = level[start : start + order]
                parent = _Node(is_leaf=False)
                parent.children = group
                parent.keys = [_smallest_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    # -- queries -------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[_upper_bound(node.keys, key)]
        return node

    def search(self, key: Any) -> list[Any]:
        """All payloads stored under exactly ``key`` (empty if none)."""
        leaf = self._find_leaf(key)
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, payload) for keys in [low, high], leaf-chain order.

        ``None`` bounds are open on that side.
        """
        if low is None:
            leaf: Optional[_Node] = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(low)
            idx = _lower_bound(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if low is not None:
                    if key < low or (not include_low and key == low):
                        idx += 1
                        continue
                if high is not None:
                    if key > high or (not include_high and key == high):
                        return
                for payload in leaf.values[idx]:
                    yield key, payload
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def floor(self, key: Any) -> Optional[tuple[Any, list[Any]]]:
        """Largest stored key <= ``key`` with its payloads, or ``None``."""
        leaf = self._find_leaf(key)
        idx = _upper_bound(leaf.keys, key) - 1
        if idx >= 0:
            return leaf.keys[idx], list(leaf.values[idx])
        # key smaller than everything in this leaf; scan from the start
        prev: Optional[tuple[Any, list[Any]]] = None
        for k, v in self.items():
            if k > key:
                break
            prev = (k, [v])  # not used on this path in practice
        if prev is None:
            return None
        return prev[0], self.search(prev[0])

    def min_key(self) -> Optional[Any]:
        leaf = self._leftmost_leaf()
        return leaf.keys[0] if leaf.keys else None

    def max_key(self) -> Optional[Any]:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, payload) pairs in key order."""
        leaf: Optional[_Node] = self._leftmost_leaf()
        while leaf is not None:
            for key, payloads in zip(leaf.keys, leaf.values):
                for payload in payloads:
                    yield key, payload
            leaf = leaf.next_leaf

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if structural invariants are violated (test hook)."""
        count = self._check_node(self._root, None, None, is_root=True)
        if count != self._size:
            raise IndexError_(f"size mismatch: counted {count}, recorded {self._size}")

    def _check_node(self, node: _Node, low: Any, high: Any, is_root: bool) -> int:
        keys = node.keys
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise IndexError_(f"keys not strictly sorted: {keys!r}")
        for key in keys:
            if low is not None and key < low:
                raise IndexError_(f"key {key!r} below lower bound {low!r}")
            if high is not None and key >= high and node.is_leaf:
                raise IndexError_(f"key {key!r} at/above upper bound {high!r}")
        if node.is_leaf:
            if len(node.values) != len(keys):
                raise IndexError_("leaf keys/values length mismatch")
            if len(keys) >= self._order and not is_root:
                raise IndexError_("overfull leaf")
            return len(keys)
        if len(node.children) != len(keys) + 1:
            raise IndexError_("internal children/keys mismatch")
        total = 0
        bounds = [low] + list(keys) + [high]
        for child, (lo, hi) in zip(node.children, zip(bounds[:-1], bounds[1:])):
            total += self._check_node(child, lo, hi, is_root=False)
        return total


def _lower_bound(keys: list[Any], key: Any) -> int:
    """First index with keys[i] >= key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: list[Any], key: Any) -> int:
    """First index with keys[i] > key."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _smallest_key(node: _Node) -> Any:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]
