"""The layered index (section IV-B, Figure 4).

Level 1 describes, per block, where an attribute's values can be:

* **discrete** attribute - one bitmap per distinct value; bit i set when
  block i contains that value (used for ``SenID``, ``Tname``, string
  application columns);
* **continuous** attribute - one entry per block holding a bitmap over the
  buckets of an equal-depth histogram (a bucket's bit is set when the
  block contains a value inside that bucket's range).

Level 2 is one B+-tree per block on the attribute, bulk-loaded when the
block is chained, mapping values to transaction positions inside the
block.  The Authenticated Layered Index (ALI) swaps the level-2 trees for
Merkle B-trees via the ``tree_factory`` hook.

Benefits reproduced from the paper: batch appends never rebalance an old
structure, empty queries are filtered at level 1, and the block-level index
composes with level 1 for time-window queries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Protocol, Sequence

from ..common.errors import IndexError_
from ..model.block import Block
from .bitmap import Bitmap
from .bptree import BPlusTree
from .histogram import EqualDepthHistogram


class SecondLevelTree(Protocol):
    """What level 2 must offer (both BPlusTree and MBTree satisfy it)."""

    def search(self, key: Any) -> list[Any]: ...

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> Iterable[tuple[Any, Any]]: ...


#: Builds a level-2 tree from (key, position) pairs; receives the block so
#: authenticated factories can hash the actual records into leaf digests.
TreeFactory = Callable[[Sequence[tuple[Any, Any]], Block], SecondLevelTree]
Extractor = Callable[..., Any]  # Transaction -> key value (or None to skip)


def _default_tree_factory(order: int) -> TreeFactory:
    def build(pairs: Sequence[tuple[Any, Any]], block: Block) -> SecondLevelTree:
        return BPlusTree.bulk_load(pairs, order=order)

    return build


class LayeredIndex:
    """Two-level index on one attribute of one table (or of all tables).

    Parameters
    ----------
    column:
        Attribute name this index covers (for diagnostics).
    extractor:
        Maps a transaction to its index key, or ``None`` to skip the
        transaction (wrong table, NULL value).
    continuous:
        Selects histogram level-1 entries (True) or per-value bitmaps.
    histogram:
        Required when ``continuous``; built by sampling history at index
        creation time (:meth:`IndexManager.create_layered_index` does it).
    order:
        Fan-out for level-2 B+-trees.
    tree_factory:
        Override to build authenticated (MB-tree) second levels.
    """

    def __init__(
        self,
        column: str,
        extractor: Extractor,
        continuous: bool,
        histogram: Optional[EqualDepthHistogram] = None,
        order: int = 32,
        tree_factory: Optional[TreeFactory] = None,
    ) -> None:
        if continuous and histogram is None:
            raise IndexError_(
                f"layered index on continuous column {column!r} needs a histogram"
            )
        self.column = column
        self.continuous = continuous
        self.histogram = histogram
        self._extract = extractor
        self._tree_factory = tree_factory or _default_tree_factory(order)
        # level 1, discrete: value -> block bitmap
        self._value_bitmaps: dict[Any, Bitmap] = {}
        # level 1, continuous: block id -> bucket bitmap (int)
        self._bucket_bits: dict[int, int] = {}
        # level 2: block id -> tree (only blocks with indexed values)
        self._trees: dict[int, SecondLevelTree] = {}
        # per-block distinct values (discrete join intersect test)
        self._block_values: dict[int, set[Any]] = {}
        self._num_blocks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "continuous" if self.continuous else "discrete"
        return f"<LayeredIndex {self.column} ({kind}) blocks={self._num_blocks}>"

    @property
    def extractor(self) -> Extractor:
        """The key extractor (statistics refresh re-samples through it)."""
        return self._extract

    # -- maintenance -----------------------------------------------------------

    def add_block(self, block: Block) -> None:
        """Append-time update: level-1 entry + bulk-loaded level-2 tree."""
        bid = block.height
        if bid < self._num_blocks:
            raise IndexError_(
                f"layered index on {self.column!r} already covers block {bid}"
            )
        pairs: list[tuple[Any, int]] = []
        for position, tx in enumerate(block.transactions):
            key = self._extract(tx)
            if key is None:
                continue
            pairs.append((key, position))
        self._num_blocks = bid + 1
        if not pairs:
            return
        if self.continuous:
            assert self.histogram is not None
            bits = 0
            for key, _ in pairs:
                bits |= 1 << self.histogram.bucket_of(key)
            self._bucket_bits[bid] = bits
        else:
            values = {key for key, _ in pairs}
            for value in values:
                self._value_bitmaps.setdefault(value, Bitmap()).set(bid)
            self._block_values[bid] = values
        self._trees[bid] = self._tree_factory(pairs, block)

    def refresh_histogram(self, histogram: EqualDepthHistogram) -> None:
        """Swap in a freshly sampled histogram and rebucket level 1.

        Bucket bounds move, so every block's bucket bitmap is recomputed
        - from the level-2 trees' sorted keys, no block-store I/O.  The
        trees and the discrete value bitmaps are untouched: only the
        histogram's view of the value distribution goes stale, never the
        per-block structures.
        """
        if not self.continuous:
            raise IndexError_(
                f"layered index on discrete column {self.column!r} has no "
                f"histogram to refresh"
            )
        self.histogram = histogram
        self._bucket_bits = {}
        for bid, tree in self._trees.items():
            bits = 0
            for key, _position in tree.range(None, None):
                bits |= 1 << histogram.bucket_of(key)
            if bits:
                self._bucket_bits[bid] = bits

    # -- level-1 filtering -------------------------------------------------------

    def first_level_bitmap(self) -> Bitmap:
        """Blocks containing *any* indexed value (B' of Algorithms 2-3)."""
        if self.continuous:
            return Bitmap.from_indices(self._bucket_bits)
        return Bitmap.from_indices(self._trees)

    def candidate_blocks_eq(self, value: Any) -> Bitmap:
        """Blocks that can contain ``value``."""
        if self.continuous:
            return self.candidate_blocks_range(value, value)
        bitmap = self._value_bitmaps.get(value)
        return bitmap.copy() if bitmap is not None else Bitmap()

    def candidate_blocks_range(self, low: Any, high: Any) -> Bitmap:
        """Blocks whose level-1 entry intersects ``[low, high]``.

        For continuous attributes this is the paper's "bitwise AND on the
        subset of each entry and a range defined by the query predicate".
        """
        if self.continuous:
            assert self.histogram is not None
            mask = 0
            for bucket in self.histogram.buckets_overlapping(low, high):
                mask |= 1 << bucket
            result = Bitmap()
            for bid, bits in self._bucket_bits.items():
                if bits & mask:
                    result.set(bid)
            return result
        result = Bitmap()
        for value, bitmap in self._value_bitmaps.items():
            if (low is None or value >= low) and (high is None or value <= high):
                result = result | bitmap
        return result

    # -- level-2 access ------------------------------------------------------------

    def has_tree(self, bid: int) -> bool:
        return bid in self._trees

    def tree(self, bid: int) -> SecondLevelTree:
        if bid not in self._trees:
            raise IndexError_(
                f"layered index on {self.column!r} has no entries for block {bid}"
            )
        return self._trees[bid]

    def search_block(self, bid: int, value: Any) -> list[int]:
        """Positions (within block ``bid``) of tuples with this value."""
        if bid not in self._trees:
            return []
        return list(self._trees[bid].search(value))

    def range_block(
        self, bid: int, low: Any = None, high: Any = None
    ) -> list[tuple[Any, int]]:
        """(value, position) pairs with value in [low, high], sorted."""
        if bid not in self._trees:
            return []
        return list(self._trees[bid].range(low, high))

    # -- join support ------------------------------------------------------------------

    def block_value_bounds(self, bid: int) -> Optional[tuple[Any, Any]]:
        """(min-possible, max-possible) attribute bounds of block ``bid``.

        Continuous: union of the bucket ranges present (``None`` ends are
        unbounded).  Discrete: exact min/max of the distinct values.
        Returns ``None`` when the block has no indexed values.
        """
        if self.continuous:
            bits = self._bucket_bits.get(bid)
            if not bits:
                return None
            assert self.histogram is not None
            buckets = [i for i in range(self.histogram.num_buckets) if bits >> i & 1]
            low = self.histogram.bucket_range(buckets[0])[0]
            high = self.histogram.bucket_range(buckets[-1])[1]
            return (low, high)
        values = self._block_values.get(bid)
        if not values:
            return None
        return (min(values), max(values))

    def block_bucket_ranges(self, bid: int) -> list[tuple[Any, Any]]:
        """Ranges (l, u) of the buckets present in block ``bid``.

        This is the e_{r_i} of Algorithm 2's ``intersect`` test.  Discrete
        indexes degenerate to one point range per distinct value.
        """
        if self.continuous:
            bits = self._bucket_bits.get(bid)
            if not bits:
                return []
            assert self.histogram is not None
            return [
                self.histogram.bucket_range(i)
                for i in range(self.histogram.num_buckets)
                if bits >> i & 1
            ]
        return [(v, v) for v in sorted(self._block_values.get(bid, ()))]

    def block_values(self, bid: int) -> set[Any]:
        """Distinct values in block ``bid`` (discrete indexes only)."""
        if self.continuous:
            raise IndexError_("block_values is only defined for discrete indexes")
        return set(self._block_values.get(bid, ()))


def ranges_intersect(
    left: Sequence[tuple[Any, Any]], right: Sequence[tuple[Any, Any]]
) -> bool:
    """Algorithm 2's ``intersect(b_r, b_s)``.

    True iff some bucket k of the left block and m of the right block
    overlap: NOT (k.u < m.l OR k.l > m.u), with ``None`` as +/- infinity.
    """

    def overlaps(a: tuple[Any, Any], b: tuple[Any, Any]) -> bool:
        a_lo, a_hi = a
        b_lo, b_hi = b
        if a_hi is not None and b_lo is not None and a_hi < b_lo:
            return False
        if a_lo is not None and b_hi is not None and a_lo > b_hi:
            return False
        return True

    return any(overlaps(k, m) for k in left for m in right)
