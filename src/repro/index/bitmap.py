"""Bitmaps over block ids.

The table-level index and the first level of the layered index both answer
"which blocks can contain anything relevant?" with a bitmap whose i-th bit
marks block i.  Bitmaps are backed by a single Python int, so AND/OR are
one machine-word-parallel operation each - the bitwise filtering step at
the heart of Algorithms 1-3.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Bitmap:
    """Growable bitmap with set-algebra; immutable-style operators."""

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0) -> None:
        if bits < 0:
            raise ValueError("bitmap backing int cannot be negative")
        self._bits = bits

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "Bitmap":
        bits = 0
        for index in indices:
            if index < 0:
                raise ValueError(f"negative bit index {index}")
            bits |= 1 << index
        return cls(bits)

    @classmethod
    def range(cls, start: int, stop: int) -> "Bitmap":
        """Bits [start, stop) set - e.g. 'blocks inside the time window'."""
        if stop <= start:
            return cls(0)
        return cls(((1 << (stop - start)) - 1) << start)

    # -- mutation ------------------------------------------------------------

    def set(self, index: int) -> None:
        if index < 0:
            raise ValueError(f"negative bit index {index}")
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        self._bits &= ~(1 << index)

    # -- queries -------------------------------------------------------------

    def test(self, index: int) -> bool:
        return bool(self._bits >> index & 1) if index >= 0 else False

    def __contains__(self, index: int) -> bool:
        return self.test(index)

    def __bool__(self) -> bool:
        return self._bits != 0

    def __len__(self) -> int:
        """Population count."""
        return self._bits.bit_count()

    def __iter__(self) -> Iterator[int]:
        """Indices of set bits, ascending."""
        bits = self._bits
        index = 0
        while bits:
            tz = (bits & -bits).bit_length() - 1
            index += tz
            yield index
            bits >>= tz + 1
            index += 1

    def max_bit(self) -> int:
        """Highest set bit index, or -1 when empty."""
        return self._bits.bit_length() - 1

    # -- algebra ---------------------------------------------------------------

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & other._bits)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits | other._bits)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits ^ other._bits)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        return Bitmap(self._bits & ~other._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bitmap) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"Bitmap({{{', '.join(map(str, self))}}})"

    def copy(self) -> "Bitmap":
        return Bitmap(self._bits)

    def to_int(self) -> int:
        return self._bits
