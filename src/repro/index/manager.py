"""Index manager: creation, backfill and maintenance of all three indexes.

Owns the block-level B+-tree, the table-level bitmap index and every
layered index of a node.  It subscribes to the block store so each
appended block updates all structures in one pass, and it can create a new
layered index over an existing chain (sampling history for the histogram,
then backfilling level-1 entries and level-2 trees block by block).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..common.errors import CatalogError, IndexError_
from ..model.block import Block
from ..model.schema import TableSchema
from ..model.transaction import Transaction
from ..storage.blockstore import BlockStore
from ..storage.segment import BlockLocation
from .block_index import BlockIndex
from .histogram import EqualDepthHistogram
from .layered import LayeredIndex, TreeFactory
from .table_index import TableBitmapIndex

#: System columns a layered index may target without a table schema.
_SYSTEM_CONTINUOUS = {"tid": True, "ts": True, "senid": False, "tname": False}

#: Maximum historical values sampled to build a histogram.
_HISTOGRAM_SAMPLE_CAP = 10_000


def system_extractor(column: str, table: Optional[str]) -> Callable[[Transaction], Any]:
    """Extractor for a system-level column, optionally table-scoped."""
    lowered = column.lower()
    if lowered not in _SYSTEM_CONTINUOUS:
        raise IndexError_(f"{column!r} is not a system column")
    table_l = table.lower() if table else None

    def extract(tx: Transaction) -> Any:
        if table_l is not None and tx.tname != table_l:
            return None
        return getattr(tx, lowered)

    return extract


def app_extractor(schema: TableSchema, column: str) -> Callable[[Transaction], Any]:
    """Extractor for an application-level column of one table."""
    position = None
    for i, col in enumerate(schema.app_columns):
        if col.name == column.lower():
            position = i
            break
    if position is None:
        raise IndexError_(f"table {schema.name!r} has no app column {column!r}")

    def extract(tx: Transaction) -> Any:
        if tx.tname != schema.name:
            return None
        if position >= len(tx.values):
            return None
        return tx.values[position]

    return extract


class IndexManager:
    """All indexes of one full node, updated on every block append."""

    def __init__(self, store: BlockStore, order: int = 32,
                 histogram_depth: int = 100) -> None:
        self._store = store
        self._order = order
        self._histogram_depth = histogram_depth
        self.block_index = BlockIndex(order=order)
        self.table_index = TableBitmapIndex(track_senders=True)
        #: (table or None, column) -> LayeredIndex
        self._layered: dict[tuple[Optional[str], str], LayeredIndex] = {}
        store.add_listener(self._on_block)
        # backfill anything already on chain
        for height in range(store.height):
            block = store.read_block(height)
            self.block_index.add_block(block, store.location(height))
            self.table_index.add_block(block)
            for index in self._layered.values():
                index.add_block(block)

    # -- maintenance ------------------------------------------------------------

    def _on_block(self, block: Block, location: BlockLocation) -> None:
        self.block_index.add_block(block, location)
        self.table_index.add_block(block)
        for index in self._layered.values():
            index.add_block(block)

    # -- layered index creation ----------------------------------------------------

    def create_layered_index(
        self,
        column: str,
        table: Optional[str] = None,
        schema: Optional[TableSchema] = None,
        continuous: Optional[bool] = None,
        authenticated: bool = False,
        tree_factory: Optional[TreeFactory] = None,
    ) -> LayeredIndex:
        """Create (and backfill) a layered index on ``column``.

        System columns (``senid``, ``tname``, ``ts``, ``tid``) may be
        indexed globally (``table=None``) - the paper's tracking indexes
        span *all* tables.  Application columns need the table's
        ``schema``.  ``authenticated=True`` builds the ALI variant whose
        second level is a Merkle B-tree (thin-client support).
        """
        key = (table.lower() if table else None, column.lower())
        if key in self._layered:
            raise IndexError_(f"layered index on {key} already exists")
        lowered = column.lower()
        if lowered in _SYSTEM_CONTINUOUS:
            extractor = system_extractor(lowered, table)
            if continuous is None:
                continuous = _SYSTEM_CONTINUOUS[lowered]
        else:
            if schema is None:
                raise CatalogError(
                    f"indexing app column {column!r} requires the table schema"
                )
            extractor = app_extractor(schema, lowered)
            if continuous is None:
                continuous = schema.column_type(lowered).is_continuous
        histogram = None
        if continuous:
            histogram = self._sample_histogram(extractor)
        if tree_factory is None and authenticated:
            # local import: mht depends on index/common, never on manager
            from ..common.hashing import hash_leaf
            from ..mht.mbtree import MBTree

            def tree_factory(pairs: Any, block: Block) -> Any:  # type: ignore[misc]
                def digest(key: Any, position: int) -> bytes:
                    return hash_leaf(block.transactions[position].to_bytes())

                return MBTree.bulk_load(pairs, order=self._order, digest_fn=digest)

        index = LayeredIndex(
            column=lowered,
            extractor=extractor,
            continuous=continuous,
            histogram=histogram,
            order=self._order,
            tree_factory=tree_factory,
        )
        for height in range(self._store.height):
            index.add_block(self._store.read_block(height))
        self._layered[key] = index
        return index

    def _sample_histogram(
        self,
        extractor: Callable[[Transaction], Any],
        newest_first: bool = False,
    ) -> EqualDepthHistogram:
        """Sample historical transactions for the equal-depth histogram.

        At creation time the sample walks the chain from genesis (cheap,
        and any slice is representative of a fresh chain).  A *refresh*
        samples newest-first instead: the cap would otherwise pin the
        sample to the oldest blocks forever, which is exactly the
        staleness ``\\analyze`` exists to fix.
        """
        sample = self._sample_values(extractor, newest_first)
        return EqualDepthHistogram.from_sample(sample, self._histogram_depth)

    def _sample_values(
        self,
        extractor: Callable[[Transaction], Any],
        newest_first: bool = False,
    ) -> list[Any]:
        sample: list[Any] = []
        heights = range(self._store.height)
        if newest_first:
            heights = range(self._store.height - 1, -1, -1)
        for height in heights:
            block = self._store.read_block(height)
            for tx in block.transactions:
                value = extractor(tx)
                if value is not None:
                    sample.append(value)
            if len(sample) >= _HISTOGRAM_SAMPLE_CAP:
                break
        return sample

    def refresh_statistics(self) -> dict[str, int]:
        """Rebuild every continuous layered index's equal-depth histogram
        from current chain data (newest blocks first, same sample cap).

        Estimates drive plan choice (eq. 3's p comes from histogram
        bucket coverage), so after heavy writes that shift a column's
        distribution the planner mis-costs until this runs - the CLI
        exposes it as ``\\analyze``.  Returns ``column -> sample size``
        for each refreshed index.
        """
        refreshed: dict[str, int] = {}
        for (table, column), index in sorted(
            self._layered.items(), key=lambda kv: (kv[0][0] or "", kv[0][1])
        ):
            if not index.continuous:
                continue  # discrete indexes estimate from value bitmaps
            sample = self._sample_values(index.extractor, newest_first=True)
            index.refresh_histogram(
                EqualDepthHistogram.from_sample(sample, self._histogram_depth)
            )
            name = f"{table}.{column}" if table else column
            refreshed[name] = len(sample)
        return refreshed

    # -- lookup ---------------------------------------------------------------------

    def layered(self, column: str, table: Optional[str] = None) -> Optional[LayeredIndex]:
        """The layered index on (table, column); table-scoped first, then global."""
        key = (table.lower() if table else None, column.lower())
        index = self._layered.get(key)
        if index is None and table is not None:
            index = self._layered.get((None, column.lower()))
        return index

    def has_layered(self, column: str, table: Optional[str] = None) -> bool:
        return self.layered(column, table) is not None

    @property
    def layered_indexes(self) -> dict[tuple[Optional[str], str], LayeredIndex]:
        return dict(self._layered)
