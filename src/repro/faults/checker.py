"""Post-chaos safety checking.

After a chaos run drains, the deployment must still satisfy the ledger's
safety contract (section "no worse than crash-free" of the fault model,
DESIGN.md §6):

* **Agreement** - every live node holds a byte-identical chain;
* **Integrity** - every chain re-verifies (hash chaining + Merkle roots);
* **Exactly-once** - every acknowledged client request appears on-chain
  exactly once (no loss, no duplication despite retries), and *no*
  nonce-carrying request appears more than once;
* **Typed failures** - every submission that did not commit is surfaced
  with a typed error (:class:`TimeoutError_` / :class:`RetryExhausted`),
  never silently dropped.

When the run used a replicated ordering-broker cluster, pass the engine
so the broker-level contract is audited too:

* **No double-ordered batch** - the delivery log is one strictly
  increasing, gap-free sequence (a batch acked by a deposed leader was
  never re-ordered by its successor);
* **No unresolved election** - the live brokers at the highest epoch
  agree on exactly one leader;
* **Converged ISR** - every live broker's replicated log is a prefix of
  the acting leader's log.

When the deployment is sharded, pass the :class:`ShardedNode` set via
``sharded`` so the cross-shard commit contract is audited too:

* **Atomic outcome** - for every cross-shard transaction, all
  participant shards record the *same* outcome, a committed outcome is
  backed by the coordinator's commit decision, and every committed
  participant's slice is actually on that shard's chain;
* **No in-doubt survivors** - a live (recovered) node holds no PREPARE
  without a resolving OUTCOME.

:class:`InvariantChecker` evaluates all of these and either returns an
:class:`InvariantReport` or raises
:class:`~repro.common.errors.DivergenceError` listing each violation.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Optional, Sequence

from ..client.submitter import ACKED, FAILED, PENDING, ResilientSubmitter
from ..common.errors import DivergenceError, StorageError
from ..model.transaction import Transaction
from ..node.fullnode import FullNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..shard.node import ShardedNode


@dataclasses.dataclass
class InvariantReport:
    """Outcome of one invariant sweep."""

    violations: list[str] = dataclasses.field(default_factory=list)
    warnings: list[str] = dataclasses.field(default_factory=list)
    heights: dict[str, int] = dataclasses.field(default_factory=dict)
    acked: int = 0
    failed: int = 0
    pending: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"invariants {status}; heights={self.heights}; "
            f"acked={self.acked} failed={self.failed} pending={self.pending}; "
            f"warnings={len(self.warnings)}"
        )


def _slice_on_chain(shard: FullNode, prepare: object) -> bool:
    """Is every transaction of a prepared slice on the shard's chain?

    Committed copies carry pipeline-assigned tids, so presence is judged
    on signing payloads (tid- and signature-independent).
    """
    targets = {
        Transaction.from_bytes(chunk).signing_payload()
        for chunk in prepare.payload  # type: ignore[attr-defined]
    }
    found: set[bytes] = set()
    for height in range(shard.store.height):
        for tx in shard.store.read_block(height).transactions:
            payload = tx.signing_payload()
            if payload in targets:
                found.add(payload)
    return len(found) == len(targets)


class InvariantChecker:
    """Asserts chain-level and client-level safety after a chaos run."""

    def __init__(
        self,
        nodes: Sequence[FullNode] = (),
        submitters: Sequence[ResilientSubmitter] = (),
        engine: Optional[object] = None,
        sharded: Sequence["ShardedNode"] = (),
    ) -> None:
        if not nodes and not sharded:
            raise ValueError("need at least one node to check")
        self.nodes = list(nodes)
        self.submitters = list(submitters)
        self.engine = engine
        self.sharded = list(sharded)

    def check(self, raise_on_violation: bool = True) -> InvariantReport:
        report = InvariantReport()
        live = [node for node in self.nodes if not node.crashed]
        for node in self.nodes:
            report.heights[node.node_id] = node.store.height
        if self.nodes and not live:
            report.violations.append("no live nodes left to check")
        elif live:
            self._check_agreement(live, report)
            self._check_integrity(live, report)
            self._check_submissions(live[0], report)
        cluster = getattr(self.engine, "cluster", None)
        if cluster is not None:
            self._check_broker_cluster(cluster, report)
        for node in self.sharded:
            self._check_sharded(node, report)
        if raise_on_violation and report.violations:
            raise DivergenceError(
                "safety violated after chaos run:\n  - "
                + "\n  - ".join(report.violations)
            )
        return report

    # -- chain-level invariants ---------------------------------------------

    def _check_agreement(
        self, live: list[FullNode], report: InvariantReport
    ) -> None:
        reference = live[0]
        for node in live[1:]:
            if node.store.height != reference.store.height:
                report.violations.append(
                    f"height divergence: {node.node_id} at "
                    f"{node.store.height}, {reference.node_id} at "
                    f"{reference.store.height}"
                )
                continue
            for height in range(reference.store.height):
                ours = reference.store.read_block(height).to_bytes()
                theirs = node.store.read_block(height).to_bytes()
                if ours != theirs:
                    report.violations.append(
                        f"chain divergence at height {height}: "
                        f"{node.node_id} disagrees with {reference.node_id}"
                    )
                    break

    def _check_integrity(
        self, live: list[FullNode], report: InvariantReport
    ) -> None:
        for node in live:
            try:
                # the checker is the auditor of record: always re-verify
                # end to end, never trust the checkpoint fast path
                node.verify_local_chain(full=True)
            except StorageError as exc:
                report.violations.append(
                    f"{node.node_id} chain fails re-verification: {exc}"
                )
            # header timestamps must never regress across heights (the
            # pipeline clamps to the parent header when packaging)
            for height in range(1, node.store.height):
                if (node.store.header(height).timestamp
                        < node.store.header(height - 1).timestamp):
                    report.violations.append(
                        f"{node.node_id} header timestamp regresses at "
                        f"height {height}"
                    )
                    break
            log = getattr(node, "commit_log", None)
            if log is not None and log.pending() is not None:
                report.violations.append(
                    f"{node.node_id} has an unresolved commit record: a "
                    f"live node must have replayed or discarded it"
                )

    # -- broker-cluster invariants --------------------------------------------

    def _check_broker_cluster(self, cluster, report: InvariantReport) -> None:
        # no double-ordered batch: the delivery log is one strictly
        # increasing, gap-free sequence
        seqs = [seq for seq, _epoch, _digest in cluster.delivery_log]
        if seqs != list(range(len(seqs))):
            report.violations.append(
                f"broker delivery log is not a gap-free sequence: {seqs}"
            )
        live = [b for b in cluster.brokers if not b.crashed]
        if not live:
            return
        # no unresolved election: the live brokers at the highest epoch
        # agree on exactly one leader
        top_epoch = max(b.epoch for b in live)
        front = [b for b in live if b.epoch == top_epoch]
        leaders = sorted({b.leader for b in front if b.leader is not None})
        if len(leaders) != 1:
            report.violations.append(
                f"unresolved election at epoch {top_epoch}: "
                f"leaders seen {leaders}"
            )
            return
        acting = cluster.acting_leader()
        if acting is None:
            report.violations.append(
                f"no live broker claims leadership for epoch {top_epoch}"
            )
            return
        # converged ISR: every live broker's log is a prefix of the
        # acting leader's log
        for broker in live:
            if broker is acting:
                continue
            if len(broker.log) > len(acting.log):
                report.violations.append(
                    f"{broker.node_id} holds {len(broker.log)} entries, "
                    f"more than leader {acting.node_id}'s {len(acting.log)}"
                )
                continue
            for index, entry in enumerate(broker.log):
                if not entry.same_as(acting.log[index]):
                    report.violations.append(
                        f"{broker.node_id} log diverges from leader "
                        f"{acting.node_id} at entry {index}"
                    )
                    break

    # -- cross-shard commit invariants ----------------------------------------

    def _check_sharded(
        self, node: "ShardedNode", report: InvariantReport
    ) -> None:
        """Audit one sharded deployment's 2PC journals against its chains."""
        report.heights[node.node_id] = sum(
            node.shards[sid].store.height for sid in sorted(node.shards)
        )
        if node.crashed:
            return
        # per-shard chain integrity, end to end
        for sid in sorted(node.shards):
            shard = node.shards[sid]
            try:
                shard.verify_local_chain(full=True)
            except StorageError as exc:
                report.violations.append(
                    f"{shard.node_id} chain fails re-verification: {exc}"
                )
        # a live node must have resolved every prepare it ever journaled,
        # and all participants of one xid must agree on the outcome
        outcomes: dict[bytes, dict[int, bool]] = {}
        prepared: dict[bytes, dict[int, object]] = {}
        for sid in sorted(node.shards):
            log = node.shards[sid].commit_log
            for record in log.prepares():
                prepared.setdefault(record.xid, {})[sid] = record
                outcome = log.outcome_for(record.xid)
                if outcome is None:
                    report.violations.append(
                        f"{node.shards[sid].node_id} holds an in-doubt "
                        f"PREPARE {record.xid.hex()[:12]} - a live node "
                        f"must have resolved it on restart"
                    )
                    continue
                outcomes.setdefault(record.xid, {})[sid] = outcome.committed
        for xid in sorted(outcomes):
            by_shard = outcomes[xid]
            verdicts = sorted({*by_shard.values()})
            if len(verdicts) > 1:
                report.violations.append(
                    f"cross-shard tx {xid.hex()[:12]} has disagreeing "
                    f"outcomes: {by_shard}"
                )
                continue
            committed = verdicts[0]
            any_prepare = prepared[xid][sorted(by_shard)[0]]
            coordinator = any_prepare.coordinator
            decision = None
            if coordinator in node.shards:
                decision = node.shards[coordinator].commit_log.decision_for(xid)
            if committed:
                if decision is None or not decision.commit:
                    report.violations.append(
                        f"cross-shard tx {xid.hex()[:12]} committed without "
                        f"a commit decision on coordinator shard {coordinator}"
                    )
                for sid in sorted(by_shard):
                    if not _slice_on_chain(node.shards[sid], prepared[xid][sid]):
                        report.violations.append(
                            f"cross-shard tx {xid.hex()[:12]} committed but "
                            f"its slice is missing from shard {sid}'s chain"
                        )
            elif decision is not None and decision.commit:
                report.violations.append(
                    f"cross-shard tx {xid.hex()[:12]} was decided commit "
                    f"but participants recorded an abort"
                )

    # -- client-level invariants ---------------------------------------------

    def _committed_keys(self, reference: FullNode) -> Counter:
        keys: Counter = Counter()
        for block in reference.store.iter_blocks():
            for tx in block.transactions:
                key = tx.dedup_key()
                if key is not None:
                    keys[key] += 1
        return keys

    def _check_submissions(
        self, reference: FullNode, report: InvariantReport
    ) -> None:
        keys = self._committed_keys(reference)
        # global no-duplication: no nonce commits twice, acked or not
        for key, count in keys.items():
            if count > 1:
                report.violations.append(
                    f"request {key[1]!r} from {key[0]!r} committed "
                    f"{count} times"
                )
        for submitter in self.submitters:
            for record in submitter.records:
                key = (record.tx.senid, record.nonce)
                on_chain = keys.get(key, 0)
                if record.status == ACKED:
                    report.acked += 1
                    if on_chain == 0:
                        report.violations.append(
                            f"acked request {record.nonce!r} is missing "
                            f"from the chain"
                        )
                elif record.status == FAILED:
                    report.failed += 1
                    if record.error is None:
                        report.violations.append(
                            f"failed request {record.nonce!r} carries no "
                            f"typed error"
                        )
                    if on_chain:
                        # committed but the final ack was lost; the client
                        # was told the outcome is ambiguous, so this is
                        # surfaced but not a safety violation
                        report.warnings.append(
                            f"request {record.nonce!r} failed client-side "
                            f"({type(record.error).__name__}) but did commit"
                        )
                elif record.status == PENDING:
                    report.pending += 1
                    report.warnings.append(
                        f"request {record.nonce!r} still pending - run "
                        f"not fully drained"
                    )
