"""Post-chaos safety checking.

After a chaos run drains, the deployment must still satisfy the ledger's
safety contract (section "no worse than crash-free" of the fault model,
DESIGN.md §6):

* **Agreement** - every live node holds a byte-identical chain;
* **Integrity** - every chain re-verifies (hash chaining + Merkle roots);
* **Exactly-once** - every acknowledged client request appears on-chain
  exactly once (no loss, no duplication despite retries), and *no*
  nonce-carrying request appears more than once;
* **Typed failures** - every submission that did not commit is surfaced
  with a typed error (:class:`TimeoutError_` / :class:`RetryExhausted`),
  never silently dropped.

When the run used a replicated ordering-broker cluster, pass the engine
so the broker-level contract is audited too:

* **No double-ordered batch** - the delivery log is one strictly
  increasing, gap-free sequence (a batch acked by a deposed leader was
  never re-ordered by its successor);
* **No unresolved election** - the live brokers at the highest epoch
  agree on exactly one leader;
* **Converged ISR** - every live broker's replicated log is a prefix of
  the acting leader's log.

:class:`InvariantChecker` evaluates all of these and either returns an
:class:`InvariantReport` or raises
:class:`~repro.common.errors.DivergenceError` listing each violation.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional, Sequence

from ..client.submitter import ACKED, FAILED, PENDING, ResilientSubmitter
from ..common.errors import DivergenceError, StorageError
from ..node.fullnode import FullNode


@dataclasses.dataclass
class InvariantReport:
    """Outcome of one invariant sweep."""

    violations: list[str] = dataclasses.field(default_factory=list)
    warnings: list[str] = dataclasses.field(default_factory=list)
    heights: dict[str, int] = dataclasses.field(default_factory=dict)
    acked: int = 0
    failed: int = 0
    pending: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"invariants {status}; heights={self.heights}; "
            f"acked={self.acked} failed={self.failed} pending={self.pending}; "
            f"warnings={len(self.warnings)}"
        )


class InvariantChecker:
    """Asserts chain-level and client-level safety after a chaos run."""

    def __init__(
        self,
        nodes: Sequence[FullNode],
        submitters: Sequence[ResilientSubmitter] = (),
        engine: Optional[object] = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node to check")
        self.nodes = list(nodes)
        self.submitters = list(submitters)
        self.engine = engine

    def check(self, raise_on_violation: bool = True) -> InvariantReport:
        report = InvariantReport()
        live = [node for node in self.nodes if not node.crashed]
        for node in self.nodes:
            report.heights[node.node_id] = node.store.height
        if not live:
            report.violations.append("no live nodes left to check")
        else:
            self._check_agreement(live, report)
            self._check_integrity(live, report)
            self._check_submissions(live[0], report)
        cluster = getattr(self.engine, "cluster", None)
        if cluster is not None:
            self._check_broker_cluster(cluster, report)
        if raise_on_violation and report.violations:
            raise DivergenceError(
                "safety violated after chaos run:\n  - "
                + "\n  - ".join(report.violations)
            )
        return report

    # -- chain-level invariants ---------------------------------------------

    def _check_agreement(
        self, live: list[FullNode], report: InvariantReport
    ) -> None:
        reference = live[0]
        for node in live[1:]:
            if node.store.height != reference.store.height:
                report.violations.append(
                    f"height divergence: {node.node_id} at "
                    f"{node.store.height}, {reference.node_id} at "
                    f"{reference.store.height}"
                )
                continue
            for height in range(reference.store.height):
                ours = reference.store.read_block(height).to_bytes()
                theirs = node.store.read_block(height).to_bytes()
                if ours != theirs:
                    report.violations.append(
                        f"chain divergence at height {height}: "
                        f"{node.node_id} disagrees with {reference.node_id}"
                    )
                    break

    def _check_integrity(
        self, live: list[FullNode], report: InvariantReport
    ) -> None:
        for node in live:
            try:
                # the checker is the auditor of record: always re-verify
                # end to end, never trust the checkpoint fast path
                node.verify_local_chain(full=True)
            except StorageError as exc:
                report.violations.append(
                    f"{node.node_id} chain fails re-verification: {exc}"
                )
            # header timestamps must never regress across heights (the
            # pipeline clamps to the parent header when packaging)
            for height in range(1, node.store.height):
                if (node.store.header(height).timestamp
                        < node.store.header(height - 1).timestamp):
                    report.violations.append(
                        f"{node.node_id} header timestamp regresses at "
                        f"height {height}"
                    )
                    break
            log = getattr(node, "commit_log", None)
            if log is not None and log.pending() is not None:
                report.violations.append(
                    f"{node.node_id} has an unresolved commit record: a "
                    f"live node must have replayed or discarded it"
                )

    # -- broker-cluster invariants --------------------------------------------

    def _check_broker_cluster(self, cluster, report: InvariantReport) -> None:
        # no double-ordered batch: the delivery log is one strictly
        # increasing, gap-free sequence
        seqs = [seq for seq, _epoch, _digest in cluster.delivery_log]
        if seqs != list(range(len(seqs))):
            report.violations.append(
                f"broker delivery log is not a gap-free sequence: {seqs}"
            )
        live = [b for b in cluster.brokers if not b.crashed]
        if not live:
            return
        # no unresolved election: the live brokers at the highest epoch
        # agree on exactly one leader
        top_epoch = max(b.epoch for b in live)
        front = [b for b in live if b.epoch == top_epoch]
        leaders = sorted({b.leader for b in front if b.leader is not None})
        if len(leaders) != 1:
            report.violations.append(
                f"unresolved election at epoch {top_epoch}: "
                f"leaders seen {leaders}"
            )
            return
        acting = cluster.acting_leader()
        if acting is None:
            report.violations.append(
                f"no live broker claims leadership for epoch {top_epoch}"
            )
            return
        # converged ISR: every live broker's log is a prefix of the
        # acting leader's log
        for broker in live:
            if broker is acting:
                continue
            if len(broker.log) > len(acting.log):
                report.violations.append(
                    f"{broker.node_id} holds {len(broker.log)} entries, "
                    f"more than leader {acting.node_id}'s {len(acting.log)}"
                )
                continue
            for index, entry in enumerate(broker.log):
                if not entry.same_as(acting.log[index]):
                    report.violations.append(
                        f"{broker.node_id} log diverges from leader "
                        f"{acting.node_id} at entry {index}"
                    )
                    break

    # -- client-level invariants ---------------------------------------------

    def _committed_keys(self, reference: FullNode) -> Counter:
        keys: Counter = Counter()
        for block in reference.store.iter_blocks():
            for tx in block.transactions:
                key = tx.dedup_key()
                if key is not None:
                    keys[key] += 1
        return keys

    def _check_submissions(
        self, reference: FullNode, report: InvariantReport
    ) -> None:
        keys = self._committed_keys(reference)
        # global no-duplication: no nonce commits twice, acked or not
        for key, count in keys.items():
            if count > 1:
                report.violations.append(
                    f"request {key[1]!r} from {key[0]!r} committed "
                    f"{count} times"
                )
        for submitter in self.submitters:
            for record in submitter.records:
                key = (record.tx.senid, record.nonce)
                on_chain = keys.get(key, 0)
                if record.status == ACKED:
                    report.acked += 1
                    if on_chain == 0:
                        report.violations.append(
                            f"acked request {record.nonce!r} is missing "
                            f"from the chain"
                        )
                elif record.status == FAILED:
                    report.failed += 1
                    if record.error is None:
                        report.violations.append(
                            f"failed request {record.nonce!r} carries no "
                            f"typed error"
                        )
                    if on_chain:
                        # committed but the final ack was lost; the client
                        # was told the outcome is ambiguous, so this is
                        # surfaced but not a safety violation
                        report.warnings.append(
                            f"request {record.nonce!r} failed client-side "
                            f"({type(record.error).__name__}) but did commit"
                        )
                elif record.status == PENDING:
                    report.pending += 1
                    report.warnings.append(
                        f"request {record.nonce!r} still pending - run "
                        f"not fully drained"
                    )
