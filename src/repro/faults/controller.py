"""Chaos controller: arms a fault schedule against a live deployment.

The controller owns the mapping from abstract fault events to concrete
system mutations: bus-level crashes and link faults for any node id,
engine-aware crash/restart for PBFT replicas (which also clears the
Byzantine flag), and :class:`~repro.node.fullnode.FullNode` crash/restart
(detach from consensus, verify + catch up on restart) for registered
full nodes.  Events fire on the simulated clock via ``bus.schedule``, so
a chaos run is exactly as deterministic as the schedule and bus seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..consensus.pbft import PBFTCluster
from ..network.bus import MessageBus
from ..node.fullnode import FullNode
from ..node.observer import BlockGossip
from .schedule import (
    BYZANTINE,
    CLEAR_LINK,
    CRASH,
    FaultEvent,
    FaultSchedule,
    HEAL_BYZANTINE,
    HEAL_PARTITION,
    LINK_FAULT,
    PARTITION,
    RESTART,
)


class ChaosController:
    """Executes a :class:`FaultSchedule` on a bus/engine/node deployment."""

    def __init__(
        self,
        bus: MessageBus,
        schedule: FaultSchedule,
        engine: Optional[object] = None,
        nodes: Optional[Sequence[FullNode]] = None,
        gossips: Optional[Sequence[BlockGossip]] = None,
    ) -> None:
        self.bus = bus
        self.schedule = schedule
        self.engine = engine
        self.nodes = {node.node_id: node for node in (nodes or [])}
        #: gossip meshes riding along with the nodes: a node crash takes
        #: its gossip endpoint down too, and a restart triggers an
        #: anti-entropy pull from every live peer mesh
        self.gossips = list(gossips or [])
        #: (fired_at_ms, event) log of everything applied so far
        self.applied: list[tuple[float, FaultEvent]] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every event relative to the current simulated time."""
        if self._armed:
            raise RuntimeError("chaos schedule already armed")
        self._armed = True
        now = self.bus.clock.now_ms()
        for event in self.schedule:
            delay = max(0.0, event.at_ms - now)
            self.bus.schedule(
                delay, (lambda ev: lambda: self._apply(ev))(event)
            )

    # -- event dispatch -----------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.applied.append((self.bus.clock.now_ms(), event))
        params = event.param_dict()
        if event.kind == CRASH:
            self._crash(params["node"])
        elif event.kind == RESTART:
            self._restart(params["node"])
        elif event.kind == PARTITION:
            self.bus.partition(
                params["group_a"], params["group_b"],
                symmetric=params.get("symmetric", True),
            )
        elif event.kind == HEAL_PARTITION:
            self.bus.heal_partition(params["group_a"], params["group_b"])
        elif event.kind == LINK_FAULT:
            src = params.pop("src")
            dst = params.pop("dst")
            self.bus.set_link_fault(src, dst, **params)
        elif event.kind == CLEAR_LINK:
            self.bus.clear_link_fault(params["src"], params["dst"])
        elif event.kind == BYZANTINE:
            self._pbft().make_byzantine(params["replica"], params["mode"])
        elif event.kind == HEAL_BYZANTINE:
            self._pbft().heal_byzantine(params["replica"])

    def _pbft(self) -> PBFTCluster:
        if not isinstance(self.engine, PBFTCluster):
            raise RuntimeError("Byzantine fault events need a PBFT engine")
        return self.engine

    def _crash(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is not None:
            node.crash()
            self.bus.fail(node_id)
            for gossip in self._gossips_of(node_id):
                self.bus.fail(gossip.gossip.node_id)
            return
        index = self._replica_index(node_id)
        if index is not None:
            self.engine.crash(index)  # type: ignore[union-attr]
            return
        if self._is_broker(node_id):
            self.engine.crash_broker(node_id)  # type: ignore[union-attr]
            return
        self.bus.fail(node_id)

    def _restart(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is not None:
            self.bus.heal(node_id)
            peers = [
                peer for peer in self.nodes.values()
                if peer.node_id != node_id and not peer.crashed
            ]
            node.restart(peers)
            for gossip in self._gossips_of(node_id):
                self.bus.heal(gossip.gossip.node_id)
                for peer_mesh in self.gossips:
                    if peer_mesh is not gossip and not peer_mesh.node.crashed:
                        gossip.anti_entropy(peer_mesh)
            return
        index = self._replica_index(node_id)
        if index is not None:
            self.engine.restart(index)  # type: ignore[union-attr]
            return
        if self._is_broker(node_id):
            self.engine.restart_broker(node_id)  # type: ignore[union-attr]
            return
        self.bus.heal(node_id)

    def _is_broker(self, node_id: str) -> bool:
        """True for an ordering-broker bus id owned by the engine."""
        return (
            hasattr(self.engine, "crash_broker")
            and node_id in getattr(self.engine, "broker_ids", ())
        )

    def _gossips_of(self, node_id: str) -> list[BlockGossip]:
        return [g for g in self.gossips if g.node.node_id == node_id]

    def _replica_index(self, node_id: str) -> Optional[int]:
        """Index of a PBFT replica bus id (``pbft-3`` -> 3), else None."""
        if isinstance(self.engine, PBFTCluster) and node_id.startswith("pbft-"):
            suffix = node_id.rsplit("-", 1)[1]
            if suffix.isdigit() and int(suffix) < self.engine.n:
                return int(suffix)
        return None
