"""Chaos engineering for the simulated SEBDB deployment.

Three pieces: :class:`FaultSchedule` scripts deterministic timed fault
events, :class:`ChaosController` arms a schedule against a live
bus/engine/node deployment, and :class:`InvariantChecker` asserts the
safety contract (byte-identical chains, exactly-once acked commits,
typed failures) once the run drains.  See DESIGN.md §6 for the fault
model.
"""

from .checker import InvariantChecker, InvariantReport
from .controller import ChaosController
from .schedule import (
    BYZANTINE,
    CLEAR_LINK,
    CRASH,
    FaultEvent,
    FaultSchedule,
    HEAL_BYZANTINE,
    HEAL_PARTITION,
    LINK_FAULT,
    PARTITION,
    RESTART,
)

__all__ = [
    "BYZANTINE",
    "CLEAR_LINK",
    "CRASH",
    "ChaosController",
    "FaultEvent",
    "FaultSchedule",
    "HEAL_BYZANTINE",
    "HEAL_PARTITION",
    "InvariantChecker",
    "InvariantReport",
    "LINK_FAULT",
    "PARTITION",
    "RESTART",
]
