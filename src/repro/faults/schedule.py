"""Scripted fault schedules.

A :class:`FaultSchedule` is a deterministic, replayable script of timed
fault events - the chaos-engineering counterpart of a benchmark workload.
Build one with the fluent helpers (``crash`` / ``partition`` /
``degrade_link`` / ...), or sample a randomized-but-seeded schedule with
:meth:`FaultSchedule.randomized`.  The schedule itself never touches the
system; :class:`~repro.faults.controller.ChaosController` arms it against
a live bus/engine/node deployment.

Two runs with the same schedule and the same bus seed produce identical
event sequences, which is what lets the soak tests assert byte-identical
chains across repetitions.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Iterable, Iterator, Optional, Sequence

# -- event kinds --------------------------------------------------------------

CRASH = "crash"                    #: crash-stop a bus node
RESTART = "restart"                #: bring a crashed node back
PARTITION = "partition"            #: cut links between two groups
HEAL_PARTITION = "heal-partition"  #: restore links between two groups
LINK_FAULT = "link-fault"          #: degrade one directed link
CLEAR_LINK = "clear-link"          #: restore one directed link
BYZANTINE = "byzantine"            #: flip a PBFT replica Byzantine
HEAL_BYZANTINE = "heal-byzantine"  #: restore a PBFT replica to honest

_KINDS = frozenset({
    CRASH, RESTART, PARTITION, HEAL_PARTITION,
    LINK_FAULT, CLEAR_LINK, BYZANTINE, HEAL_BYZANTINE,
})


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One timed fault: *at* ``at_ms`` apply *kind* with ``params``."""

    at_ms: float
    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("fault events cannot fire before t=0")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        # fail at build time, not mid-run when the controller applies it
        for name, value in self.params:
            if name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
            if name.endswith("_ms") and value < 0:
                raise ValueError(f"{name} cannot be negative, got {value}")

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"t={self.at_ms:.0f}ms {self.kind}({args})"


class FaultSchedule:
    """An ordered, immutable-once-armed script of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events = sorted(events, key=lambda e: e.at_ms)

    # -- fluent builders ----------------------------------------------------

    def _add(self, at_ms: float, kind: str, **params: Any) -> "FaultSchedule":
        self._events.append(
            FaultEvent(at_ms, kind, tuple(sorted(params.items())))
        )
        self._events.sort(key=lambda e: e.at_ms)
        return self

    def crash(self, at_ms: float, node: str) -> "FaultSchedule":
        """Crash-stop ``node`` (a bus id, e.g. ``pbft-1``, ``kafka-broker``)."""
        return self._add(at_ms, CRASH, node=node)

    def restart(self, at_ms: float, node: str) -> "FaultSchedule":
        """Restart a previously crashed node."""
        return self._add(at_ms, RESTART, node=node)

    def partition(
        self,
        at_ms: float,
        group_a: Sequence[str],
        group_b: Sequence[str],
        symmetric: bool = True,
    ) -> "FaultSchedule":
        """Cut traffic between two groups; asymmetric cuts only a->b."""
        return self._add(
            at_ms, PARTITION,
            group_a=tuple(group_a), group_b=tuple(group_b),
            symmetric=symmetric,
        )

    def heal_partition(
        self, at_ms: float, group_a: Sequence[str], group_b: Sequence[str]
    ) -> "FaultSchedule":
        return self._add(
            at_ms, HEAL_PARTITION,
            group_a=tuple(group_a), group_b=tuple(group_b),
        )

    def degrade_link(
        self, at_ms: float, src: str, dst: str, **fault_fields: float
    ) -> "FaultSchedule":
        """Apply loss/delay/duplicate/reorder/corrupt rates to a link.

        ``src``/``dst`` accept the ``"*"`` wildcard; ``fault_fields`` are
        the :class:`~repro.network.bus.LinkFault` fields (``loss_rate``,
        ``extra_delay_ms``, ``duplicate_rate``, ``reorder_rate``,
        ``corrupt_rate``, ...).
        """
        return self._add(at_ms, LINK_FAULT, src=src, dst=dst, **fault_fields)

    def restore_link(self, at_ms: float, src: str, dst: str) -> "FaultSchedule":
        return self._add(at_ms, CLEAR_LINK, src=src, dst=dst)

    def cascading_crashes(
        self,
        at_ms: float,
        nodes: Sequence[str],
        gap_ms: float,
        downtime_ms: float,
    ) -> "FaultSchedule":
        """Crash ``nodes`` one after another, ``gap_ms`` apart.

        Each victim stays down for ``downtime_ms``.  With ``gap_ms`` <
        ``downtime_ms`` the outages overlap - aimed at consecutive PBFT
        primaries, this forces view changes to chain (v+1's primary is
        already dead when v's view change completes) and exercises the
        escalation timers.
        """
        for i, node in enumerate(nodes):
            start = at_ms + i * gap_ms
            self.crash(start, node)
            self.restart(start + downtime_ms, node)
        return self

    def leader_failover(
        self, at_ms: float, broker: str, downtime_ms: float
    ) -> "FaultSchedule":
        """Crash an ordering broker and bring it back ``downtime_ms`` later.

        Aimed at the broker-cluster leader this forces an epoch-based
        election mid-stream; the restarted broker rejoins as a follower
        and resyncs its log from the new leader.
        """
        self.crash(at_ms, broker)
        self.restart(at_ms + downtime_ms, broker)
        return self

    def broker_election_storm(
        self,
        at_ms: float,
        brokers: Sequence[str],
        gap_ms: float,
        downtime_ms: float,
    ) -> "FaultSchedule":
        """Crash successive broker leaders so elections chain.

        The broker-cluster mirror of :meth:`cascading_crashes` against
        PBFT primaries: with ``gap_ms`` < ``downtime_ms`` the freshly
        elected leader dies while its predecessor is still down, so the
        cluster must escalate through multiple epochs to regain a quorum.
        """
        return self.cascading_crashes(at_ms, brokers, gap_ms, downtime_ms)

    def byzantine(
        self, at_ms: float, replica: int, mode: str = "silent"
    ) -> "FaultSchedule":
        """Flip PBFT replica ``replica`` Byzantine (silent/equivocate)."""
        return self._add(at_ms, BYZANTINE, replica=replica, mode=mode)

    def heal_byzantine(self, at_ms: float, replica: int) -> "FaultSchedule":
        return self._add(at_ms, HEAL_BYZANTINE, replica=replica)

    # -- introspection ------------------------------------------------------

    @property
    def events(self) -> list[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self._events)

    # -- randomized-but-seeded generation -----------------------------------

    @classmethod
    def randomized(
        cls,
        seed: int,
        duration_ms: float,
        nodes: Sequence[str],
        crash_count: int = 1,
        partition_count: int = 1,
        lossy_links: int = 2,
        loss_rate: float = 0.05,
        duplicate_rate: float = 0.02,
        min_downtime_ms: float = 200.0,
        rng: Optional[random.Random] = None,
    ) -> "FaultSchedule":
        """Sample a plausible chaos script from a seed (fully deterministic).

        Crashes always restart before ``duration_ms`` and partitions
        always heal, so a run that drains the bus afterwards can be held
        to the full convergence contract.
        """
        rng = rng or random.Random(seed)
        schedule = cls()
        window = max(duration_ms - 2 * min_downtime_ms, min_downtime_ms)
        for _ in range(crash_count):
            victim = rng.choice(list(nodes))
            start = rng.uniform(0, window)
            stop = min(duration_ms, start + rng.uniform(
                min_downtime_ms, 2 * min_downtime_ms))
            schedule.crash(start, victim)
            schedule.restart(stop, victim)
        for _ in range(partition_count):
            if len(nodes) < 2:
                break
            cut = max(1, len(nodes) // 3)
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            group_a, group_b = shuffled[:cut], shuffled[cut:]
            start = rng.uniform(0, window)
            stop = min(duration_ms, start + rng.uniform(
                min_downtime_ms, 2 * min_downtime_ms))
            symmetric = rng.random() < 0.5
            schedule.partition(start, group_a, group_b, symmetric=symmetric)
            schedule.heal_partition(stop, group_a, group_b)
        for _ in range(lossy_links):
            src = rng.choice(list(nodes) + ["*"])
            dst = rng.choice([n for n in nodes if n != src] or list(nodes))
            start = rng.uniform(0, window)
            schedule.degrade_link(
                start, src, dst,
                loss_rate=loss_rate, duplicate_rate=duplicate_rate,
            )
            schedule.restore_link(
                min(duration_ms, start + rng.uniform(
                    min_downtime_ms, 3 * min_downtime_ms)),
                src, dst,
            )
        return schedule
