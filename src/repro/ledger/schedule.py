"""Per-block dependency scheduling for parallel transaction execution.

"Blockchain Meets Database" (arXiv 1903.01919) executes the transactions
of a block concurrently but commits them in a serializable order so every
replica stays byte-identical.  This module builds that order for SEBDB:

* every transaction **writes** one ``(table, primary key)`` cell - the
  table is ``tname`` and the primary key is the first application-level
  attribute (SEBDB tuples are inserts keyed by their leading column;
  value-less tuples fall back to the sender id);
* two transactions **conflict** when they write the same cell, or when
  either is a ``__schema__`` transaction (creating a table orders
  against everything else in the block, before and after);
* the plan groups transactions into **waves**: every transaction in a
  wave is independent of the others, and depends only on earlier waves.

The plan is a pure, deterministic function of the transaction order -
dicts iterate in insertion order and no set is ever iterated (the
``determinism`` analysis rule polices this package) - so any number of
workers executing wave-by-wave and committing effects in tid order
reproduces the serial result exactly.  The fuzz-equivalence suite
(``tests/test_parallel_execution.py``) proves that equivalence over
random conflicting batches and worker counts.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence, Tuple

from ..model.schema import TableSchema
from ..model.transaction import (
    SCHEMA_TNAME,
    Transaction,
    schema_from_sync_transaction,
)

#: the cell a transaction writes: (table name, primary key value)
WriteKey = Tuple[str, Any]

#: system table names carrying update/delete intents: the transaction's
#: values lead with ``(target_table, target_key, ...)`` so the scheduler
#: can conflict them against the cell they mutate rather than treating
#: them as writes to a synthetic "__update__" table
UPDATE_TNAME = "__update__"
DELETE_TNAME = "__delete__"
_MUTATION_TNAMES = (UPDATE_TNAME, DELETE_TNAME)


def write_key(tx: Transaction) -> WriteKey:
    """The primary ``(table, primary key)`` cell ``tx`` writes.

    SEBDB transactions are inserts into their declared table; the first
    application-level attribute acts as the row's primary key (the
    paper's tables all lead with one - donor, project, ...).  A tuple
    with no application values degenerates to its sender id, so retried
    system traffic still serializes per sender.
    """
    return write_keys(tx)[0]


def write_keys(tx: Transaction) -> Tuple[WriteKey, ...]:
    """Every ``(table, primary key)`` cell ``tx`` writes.

    Inserts write one cell in their own table.  Update/delete intents
    (``__update__``/``__delete__`` transactions whose values lead with
    the target table and key) write the *target* cell - so an update of
    ``donate`` row ``d0`` conflicts with an insert of ``donate`` row
    ``d0``, instead of serializing behind the schema barrier or landing
    in a phantom system table.  A malformed mutation (fewer than two
    values) degenerates to the sender id, staying safe by serializing
    per sender.
    """
    if tx.tname in _MUTATION_TNAMES:
        if len(tx.values) >= 2:
            return ((str(tx.values[0]), tx.values[1]),)
        return ((tx.tname, tx.senid),)
    if tx.values:
        return ((tx.tname, tx.values[0]),)
    return ((tx.tname, tx.senid),)


def is_barrier(tx: Transaction) -> bool:
    """Schema-sync transactions order against the whole block."""
    return tx.tname == SCHEMA_TNAME


@dataclasses.dataclass(frozen=True)
class ExecutionPlan:
    """Wave-structured execution order for one block's transactions."""

    #: tid-ordered transaction positions, grouped into independent waves
    waves: Tuple[Tuple[int, ...], ...]
    #: dependency edges found (same-cell writes and barrier orderings)
    conflicts: int

    @property
    def width(self) -> int:
        """Largest wave - the usable parallelism of this block."""
        return max((len(wave) for wave in self.waves), default=0)


def plan_waves(transactions: Sequence[Transaction]) -> ExecutionPlan:
    """Build the dependency graph and collapse it into waves.

    One pass in transaction (= tid) order: a transaction lands in the
    wave right after the latest wave it depends on - the last writer of
    its cell, or the last barrier.  A barrier lands after every wave
    scheduled so far.  Positions inside a wave stay in tid order, so the
    serial order is always a legal linearization of the plan.
    """
    waves: list[list[int]] = []
    last_writer: dict[WriteKey, int] = {}
    barrier_wave = -1
    conflicts = 0
    for position, tx in enumerate(transactions):
        if is_barrier(tx):
            wave = len(waves)
            if position:
                conflicts += 1
            barrier_wave = wave
        else:
            wave = barrier_wave + 1
            keys = write_keys(tx)
            for key in keys:
                previous = last_writer.get(key)
                if previous is not None:
                    conflicts += 1
                    wave = max(wave, previous + 1)
            for key in keys:
                last_writer[key] = wave
        while len(waves) <= wave:
            waves.append([])
        waves[wave].append(position)
    return ExecutionPlan(
        waves=tuple(tuple(wave) for wave in waves), conflicts=conflicts
    )


@dataclasses.dataclass(frozen=True)
class TxEffect:
    """The prepared, side-effect-free outcome of executing one transaction.

    Workers produce effects concurrently (a pure function of the
    transaction); the committing thread folds them into catalog and
    index state strictly in tid order.  The stateful effects are a
    parsed schema registration (``__schema__``) and the write set
    (``write_keys``) the scheduler conflicted on - update/delete
    intents carry the target cell they mutate.
    """

    position: int
    #: parsed schema carried by a ``__schema__`` transaction
    schema: Optional[TableSchema] = None
    #: the cells this transaction writes (empty for schema barriers)
    write_keys: Tuple[WriteKey, ...] = ()


def prepare_effect(position: int, tx: Transaction) -> TxEffect:
    """Execute one transaction up to (but not including) its commit."""
    if tx.tname == SCHEMA_TNAME:
        return TxEffect(position=position, schema=schema_from_sync_transaction(tx))
    return TxEffect(position=position, write_keys=write_keys(tx))
