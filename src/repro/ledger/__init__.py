"""The ledger pipeline: SEBDB's single, staged write path.

Consensus orders; this package commits.  See :mod:`repro.ledger.pipeline`
for the stage contract and :mod:`repro.ledger.commitlog` for the durable
commit/checkpoint records.
"""

from .commitlog import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitLog,
    CommitRecord,
)
from .pipeline import CRASH_AFTER_APPEND, CRASH_TORN, LedgerPipeline
from .schedule import ExecutionPlan, TxEffect, plan_waves, prepare_effect, write_key
from .stats import STAGES, LedgerStats, StageStats

__all__ = [
    "AbortRecord",
    "BeginRecord",
    "CheckpointRecord",
    "CommitLog",
    "CommitRecord",
    "CRASH_AFTER_APPEND",
    "CRASH_TORN",
    "ExecutionPlan",
    "LedgerPipeline",
    "LedgerStats",
    "StageStats",
    "STAGES",
    "TxEffect",
    "plan_waves",
    "prepare_effect",
    "write_key",
]
