"""The ledger pipeline: SEBDB's single, staged write path.

Consensus orders; this package commits.  See :mod:`repro.ledger.pipeline`
for the stage contract and :mod:`repro.ledger.commitlog` for the durable
commit/checkpoint records (including the 2PC PREPARE/DECISION/OUTCOME
records the sharded cross-shard commit journals).
"""

from .commitlog import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitLog,
    CommitRecord,
    DecisionRecord,
    OutcomeRecord,
    PrepareRecord,
)
from .pipeline import CRASH_AFTER_APPEND, CRASH_TORN, LedgerPipeline
from .schedule import (
    DELETE_TNAME,
    UPDATE_TNAME,
    ExecutionPlan,
    TxEffect,
    plan_waves,
    prepare_effect,
    write_key,
    write_keys,
)
from .stats import STAGES, LedgerStats, StageStats

__all__ = [
    "AbortRecord",
    "BeginRecord",
    "CheckpointRecord",
    "CommitLog",
    "CommitRecord",
    "CRASH_AFTER_APPEND",
    "CRASH_TORN",
    "DecisionRecord",
    "DELETE_TNAME",
    "ExecutionPlan",
    "LedgerPipeline",
    "LedgerStats",
    "OutcomeRecord",
    "PrepareRecord",
    "StageStats",
    "STAGES",
    "TxEffect",
    "UPDATE_TNAME",
    "plan_waves",
    "prepare_effect",
    "write_key",
    "write_keys",
]
