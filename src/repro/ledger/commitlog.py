"""The write-ahead commit log.

A tiny intent log that makes the segment append atomic *as observed
after a crash*: the persist stage writes ``BEGIN(height, hash, length)``
before touching the segment file and ``COMMIT(height)`` after the append
returns.  On restart a ``BEGIN`` without its ``COMMIT`` proves the
trailing segment bytes belong to a block whose append was interrupted -
recovery then either *replays* (the block parsed back complete: write
the missing ``COMMIT``) or *discards* (truncate the torn tail past the
last complete block and write ``ABORT``), deterministically.

The same log persists the consensus engine's stable checkpoints
(``CHECKPOINT(seq, digest, votes, height, tip_hash)``): a node that lost
its process state proves its chain prefix from the newest record instead
of re-verifying every Merkle root, and a PBFT replica reseeds its
protocol state from the recorded certificate.

Records are length-prefixed with the repro codec, so a crash mid-log-
write leaves a torn final record that load simply drops - the log heals
the segments and the segments never need to heal the log.  A ``None``
data dir keeps records in memory (tests, benchmarks); durability then
means "survives :meth:`FullNode.crash`", matching the simulated segment
files.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Union

from ..common.codec import Reader, Writer
from ..common.errors import CodecError, LedgerError

_KIND_BEGIN = 1
_KIND_COMMIT = 2
_KIND_ABORT = 3
_KIND_CHECKPOINT = 4
_KIND_PREPARE = 5
_KIND_DECISION = 6
_KIND_OUTCOME = 7

LOG_NAME = "commit.log"


@dataclasses.dataclass(frozen=True)
class BeginRecord:
    """Intent to append one block (written before the segment write)."""

    height: int
    block_hash: bytes
    length: int


@dataclasses.dataclass(frozen=True)
class CommitRecord:
    """The append at ``height`` completed."""

    height: int


@dataclasses.dataclass(frozen=True)
class AbortRecord:
    """The append at ``height`` was torn and its tail discarded."""

    height: int


@dataclasses.dataclass(frozen=True)
class CheckpointRecord:
    """A durable engine checkpoint pinned to a chain position.

    ``seq``/``digest``/``votes`` mirror the consensus certificate
    (:class:`repro.consensus.base.Checkpoint`) without importing it -
    the ledger sits below the consensus band; ``height``/``tip_hash``
    pin the chain prefix the certificate covers.
    """

    seq: int
    digest: bytes
    votes: tuple[str, ...]
    height: int
    tip_hash: bytes


@dataclasses.dataclass(frozen=True)
class PrepareRecord:
    """A shard's vote to commit its slice of a cross-shard transaction.

    Written by a 2PC participant *before* the coordinator decides.
    ``payload`` carries the participant's encoded transactions so
    recovery can replay the slice without re-contacting the client;
    ``height`` pins the shard's chain height at prepare time, letting
    recovery detect a slice that was already applied (crash after the
    block append but before the OUTCOME record).
    """

    xid: bytes
    shard: int
    coordinator: int
    participants: tuple[int, ...]
    payload: tuple[bytes, ...]
    height: int


@dataclasses.dataclass(frozen=True)
class DecisionRecord:
    """The coordinator's global verdict for a cross-shard transaction.

    Only ever written to the *coordinator shard's* log; its presence
    with ``commit=True`` is the commit point of the whole transaction.
    Recovery on any participant resolves an in-doubt PREPARE by looking
    this record up - absent means presumed abort.
    """

    xid: bytes
    commit: bool


@dataclasses.dataclass(frozen=True)
class OutcomeRecord:
    """A participant finished acting on the decision (applied or aborted)."""

    xid: bytes
    committed: bool


LogRecord = Union[
    BeginRecord, CommitRecord, AbortRecord, CheckpointRecord,
    PrepareRecord, DecisionRecord, OutcomeRecord,
]


def _encode(record: LogRecord) -> bytes:
    writer = Writer()
    if isinstance(record, BeginRecord):
        writer.write_varint(_KIND_BEGIN)
        writer.write_varint(record.height)
        writer.write_bytes(record.block_hash)
        writer.write_varint(record.length)
    elif isinstance(record, CommitRecord):
        writer.write_varint(_KIND_COMMIT)
        writer.write_varint(record.height)
    elif isinstance(record, AbortRecord):
        writer.write_varint(_KIND_ABORT)
        writer.write_varint(record.height)
    elif isinstance(record, CheckpointRecord):
        writer.write_varint(_KIND_CHECKPOINT)
        writer.write_varint(record.seq)
        writer.write_bytes(record.digest)
        writer.write_varint(len(record.votes))
        for vote in record.votes:
            writer.write_str(vote)
        writer.write_varint(record.height)
        writer.write_bytes(record.tip_hash)
    elif isinstance(record, PrepareRecord):
        writer.write_varint(_KIND_PREPARE)
        writer.write_bytes(record.xid)
        writer.write_varint(record.shard)
        writer.write_varint(record.coordinator)
        writer.write_varint(len(record.participants))
        for participant in record.participants:
            writer.write_varint(participant)
        writer.write_varint(len(record.payload))
        for chunk in record.payload:
            writer.write_bytes(chunk)
        writer.write_varint(record.height)
    elif isinstance(record, DecisionRecord):
        writer.write_varint(_KIND_DECISION)
        writer.write_bytes(record.xid)
        writer.write_varint(1 if record.commit else 0)
    elif isinstance(record, OutcomeRecord):
        writer.write_varint(_KIND_OUTCOME)
        writer.write_bytes(record.xid)
        writer.write_varint(1 if record.committed else 0)
    else:  # pragma: no cover - exhaustive over LogRecord
        raise LedgerError(f"unknown record type {type(record).__name__}")
    return writer.getvalue()


def _decode(payload: bytes) -> LogRecord:
    reader = Reader(payload)
    kind = reader.read_varint()
    if kind == _KIND_BEGIN:
        return BeginRecord(
            height=reader.read_varint(),
            block_hash=reader.read_bytes(),
            length=reader.read_varint(),
        )
    if kind == _KIND_COMMIT:
        return CommitRecord(height=reader.read_varint())
    if kind == _KIND_ABORT:
        return AbortRecord(height=reader.read_varint())
    if kind == _KIND_CHECKPOINT:
        seq = reader.read_varint()
        digest = reader.read_bytes()
        votes = tuple(reader.read_str() for _ in range(reader.read_varint()))
        return CheckpointRecord(
            seq=seq,
            digest=digest,
            votes=votes,
            height=reader.read_varint(),
            tip_hash=reader.read_bytes(),
        )
    if kind == _KIND_PREPARE:
        xid = reader.read_bytes()
        shard = reader.read_varint()
        coordinator = reader.read_varint()
        participants = tuple(
            reader.read_varint() for _ in range(reader.read_varint())
        )
        payload = tuple(
            reader.read_bytes() for _ in range(reader.read_varint())
        )
        return PrepareRecord(
            xid=xid, shard=shard, coordinator=coordinator,
            participants=participants, payload=payload,
            height=reader.read_varint(),
        )
    if kind == _KIND_DECISION:
        return DecisionRecord(
            xid=reader.read_bytes(), commit=bool(reader.read_varint())
        )
    if kind == _KIND_OUTCOME:
        return OutcomeRecord(
            xid=reader.read_bytes(), committed=bool(reader.read_varint())
        )
    raise LedgerError(f"unknown commit-log record kind {kind}")


class CommitLog:
    """Append-only log of :class:`LogRecord` entries, on disk or in memory."""

    def __init__(self, data_dir: Optional[Path] = None) -> None:
        self._path = Path(data_dir) / LOG_NAME if data_dir is not None else None
        self._records: list[LogRecord] = []
        #: torn trailing bytes dropped while loading the log itself
        self.torn_log_bytes = 0
        if self._path is not None and self._path.exists():
            self._load(self._path.read_bytes())

    def _load(self, data: bytes) -> None:
        reader = Reader(data)
        while reader.remaining():
            position = reader.position
            try:
                self._records.append(_decode(reader.read_bytes()))
            except (CodecError, LedgerError):
                # a crash mid-log-write tears the final record; drop it
                self.torn_log_bytes = len(data) - position
                return

    def _append(self, record: LogRecord) -> None:
        self._records.append(record)
        if self._path is not None:
            writer = Writer()
            writer.write_bytes(_encode(record))
            with open(self._path, "ab") as fh:
                fh.write(writer.getvalue())

    # -- writes ------------------------------------------------------------

    def begin(self, height: int, block_hash: bytes, length: int) -> None:
        """Record the intent to append a block (before the segment write)."""
        if self.pending() is not None:
            raise LedgerError(
                f"commit record at height {height} opened while another "
                f"is still pending"
            )
        self._append(BeginRecord(height=height, block_hash=block_hash,
                                 length=length))

    def commit(self, height: int) -> None:
        self._append(CommitRecord(height=height))

    def abort(self, height: int) -> None:
        self._append(AbortRecord(height=height))

    def record_checkpoint(
        self, seq: int, digest: bytes, votes: tuple[str, ...],
        height: int, tip_hash: bytes,
    ) -> None:
        self._append(CheckpointRecord(
            seq=seq, digest=digest, votes=tuple(votes),
            height=height, tip_hash=tip_hash,
        ))

    def prepare(
        self, xid: bytes, shard: int, coordinator: int,
        participants: tuple[int, ...], payload: tuple[bytes, ...],
        height: int,
    ) -> None:
        """Journal this shard's PREPARE vote for a cross-shard commit."""
        self._append(PrepareRecord(
            xid=xid, shard=shard, coordinator=coordinator,
            participants=tuple(participants), payload=tuple(payload),
            height=height,
        ))

    def decide(self, xid: bytes, commit: bool) -> None:
        """Journal the coordinator's global decision (the commit point)."""
        if self.decision_for(xid) is not None:
            raise LedgerError(
                f"duplicate 2PC decision for xid {xid.hex()[:12]}"
            )
        self._append(DecisionRecord(xid=xid, commit=commit))

    def outcome(self, xid: bytes, committed: bool) -> None:
        """Journal that this participant finished acting on the decision."""
        self._append(OutcomeRecord(xid=xid, committed=committed))

    # -- reads -------------------------------------------------------------

    @property
    def records(self) -> list[LogRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def pending(self) -> Optional[BeginRecord]:
        """The open BEGIN record, if the last append never resolved."""
        open_begin: Optional[BeginRecord] = None
        for record in self._records:
            if isinstance(record, BeginRecord):
                open_begin = record
            elif isinstance(record, (CommitRecord, AbortRecord)):
                if open_begin is not None and record.height == open_begin.height:
                    open_begin = None
        return open_begin

    def checkpoints(self) -> list[CheckpointRecord]:
        return [r for r in self._records if isinstance(r, CheckpointRecord)]

    def latest_checkpoint(self) -> Optional[CheckpointRecord]:
        for record in reversed(self._records):
            if isinstance(record, CheckpointRecord):
                return record
        return None

    def prepares(self) -> list[PrepareRecord]:
        return [r for r in self._records if isinstance(r, PrepareRecord)]

    def decision_for(self, xid: bytes) -> Optional[DecisionRecord]:
        for record in self._records:
            if isinstance(record, DecisionRecord) and record.xid == xid:
                return record
        return None

    def outcome_for(self, xid: bytes) -> Optional[OutcomeRecord]:
        for record in self._records:
            if isinstance(record, OutcomeRecord) and record.xid == xid:
                return record
        return None

    def outcomes(self) -> list[OutcomeRecord]:
        return [r for r in self._records if isinstance(r, OutcomeRecord)]

    def in_doubt(self) -> list[PrepareRecord]:
        """PREPARE records with no OUTCOME - unresolved after a crash."""
        resolved = {r.xid for r in self._records
                    if isinstance(r, OutcomeRecord)}
        return [r for r in self._records
                if isinstance(r, PrepareRecord) and r.xid not in resolved]

    def trusted_anchor(self) -> Optional[tuple[int, bytes]]:
        """Newest checkpointed ``(height, tip_hash)`` - recovery's anchor."""
        latest = self.latest_checkpoint()
        if latest is None:
            return None
        return latest.height, latest.tip_hash
