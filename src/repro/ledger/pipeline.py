"""The staged write path: one commit pipeline for every block.

SEBDB's ordering/execution split (the ABCI-style application layer the
paper's plug-in consensus implies): consensus totally orders batches,
and this pipeline - alone - turns ordered input into chain state.  The
lifecycle runs as six explicit, instrumented stages:

1. **validate**  - signature checks, fronted by a verified-signature LRU
   so retried/replayed transactions are not re-verified;
2. **sequence**  - global tid assignment (deterministic across replicas);
3. **package**   - deterministic block sealing (Merkle root, chaining);
4. **persist**   - write-ahead commit record + segment append, so a
   crash mid-append replays or discards deterministically on restart;
5. **apply**     - catalog, indexes and MHTs observe the new block;
6. **notify**    - block listeners (gossip announcers) hear about it.

Every producer of blocks drives this one pipeline: consensus deliveries
through :meth:`commit_batch`, catch-up/gossip adoption through
:meth:`adopt_block`.  ``store.append_block`` outside this package is a
layering violation the ``commit-path`` analysis rule rejects.
"""

from __future__ import annotations

import collections
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from ..common.clock import Clock
from ..common.errors import ConfigError, LedgerError, StorageError
from ..common.lru import LRUCache
from ..crypto.batch import verify_batch
from ..crypto.keys import address_of
from ..model.block import Block
from ..model.catalog import Catalog
from ..model.transaction import Transaction
from ..storage.blockstore import BlockStore
from ..storage.segment import BlockLocation
from .commitlog import CheckpointRecord, CommitLog
from .schedule import TxEffect, plan_waves, prepare_effect
from .stats import LedgerStats

#: fault modes :meth:`LedgerPipeline.crash_next_persist` accepts
CRASH_TORN = "torn"
CRASH_AFTER_APPEND = "after-append"

#: never split a signature batch into chunks smaller than this - the
#: aggregate check amortizes better than the pool parallelizes
_MIN_CHUNK_ITEMS = 8


class LedgerPipeline:
    """Owns the block lifecycle from ordered batch to notified listeners."""

    def __init__(
        self,
        store: BlockStore,
        catalog: Catalog,
        clock: Clock,
        commit_log: Optional[CommitLog] = None,
        verify_signatures: bool = False,
        packager: str = "consensus",
        sig_cache_entries: int = 4096,
        workers: int = 1,
        batch_verify: Optional[bool] = None,
        rejected_cap: int = 256,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"pipeline workers must be >= 1, got {workers}")
        if rejected_cap < 1:
            raise ConfigError(
                f"rejected-transaction cap must be >= 1, got {rejected_cap}"
            )
        self._store = store
        self._catalog = catalog
        self._clock = clock
        self.log = commit_log if commit_log is not None else CommitLog(None)
        self.verify_signatures = verify_signatures
        self.stats = LedgerStats()
        self._packager = packager
        self._next_tid = 0
        #: most recent rejections only - a peer spraying garbage must not
        #: grow node memory without bound (drops are counted in stats)
        self._rejected: collections.deque[Transaction] = collections.deque(
            maxlen=rejected_cap
        )
        #: validate/apply concurrency; 1 = run inline, no pool is created
        self.workers = workers
        #: aggregate (random-linear-combination) Schnorr verification -
        #: by default the worker pool drives it, so a single-worker
        #: pipeline keeps the per-signature serial path bit-for-bit
        self.batch_verify = (
            batch_verify if batch_verify is not None else workers > 1
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        #: serializes pool creation against close(); without it a close()
        #: racing _pool() can observe the pre-assignment executor and leak
        #: its threads (shutdown happens on the swapped-out pool only)
        self._pool_lock = threading.Lock()
        self._block_listeners: list[Callable[[Block], None]] = []
        #: positive signature verifications, keyed by transaction hash
        self._sig_cache: LRUCache[bytes, bool] = LRUCache(
            sig_cache_entries, size_of=lambda _: 1
        )
        #: store height through which apply has run on THIS pipeline object
        #: (0 until bootstrap/rebuild; lets WAL replay tell an in-process
        #: restart apart from a fresh process that rebuilds afterwards)
        self._applied_height = 0
        self._crash_persist: Optional[tuple[str, Optional[Callable[[], None]]]] = None
        #: height -> certified block hash; bulk-transferred blocks adopted
        #: at an anchored height must hash to exactly this value
        self._anchors: dict[int, bytes] = {}

    # -- lifecycle ---------------------------------------------------------

    def bootstrap(self, genesis: Block) -> None:
        """Commit the genesis block through persist + apply (fresh chain)."""
        location = self._persist_block(genesis)
        if location is None:
            return
        self._apply_block(genesis, location)
        self._next_tid = len(genesis.transactions)

    def rebuild_from_store(self) -> None:
        """Re-derive catalog and tid counter from a recovered chain.

        Index backfill is the :class:`~repro.index.manager.IndexManager`
        constructor's own job, so only the catalog and the sequencer are
        rebuilt here; the recovery reads do not count against the cost
        model.
        """
        for block in self._store.iter_blocks():
            self._catalog.apply_block(block)
            if block.transactions:
                self._next_tid = max(self._next_tid, block.last_tid + 1)
        self._applied_height = self._store.height
        self._store.cost.reset()

    def resolve_wal(self) -> dict:
        """Resolve a pending commit record left by a crash mid-persist.

        A ``BEGIN`` without its ``COMMIT`` is resolved exactly one of two
        ways: *replay* when the store recovered the block completely (the
        append finished, only the commit mark is missing), or *discard*
        when it did not (the torn tail past the last complete block is
        truncated and the record aborted).  Idempotent when the log is
        clean.
        """
        report = {"wal_replayed": 0, "wal_discarded": 0, "torn_bytes": 0}
        pending = self.log.pending()
        if pending is None:
            return report
        if self._store.height > pending.height:
            if (self._store.header(pending.height).block_hash()
                    != pending.block_hash):
                raise LedgerError(
                    f"pending commit record at height {pending.height} does "
                    f"not match the recovered block"
                )
            self.log.commit(pending.height)
            self.stats.wal_replayed += 1
            report["wal_replayed"] = 1
            # an in-process restart replays the apply/notify the crash cut
            # short; a fresh process has applied nothing yet and rebuilds
            # from the store right after this resolves
            while 0 < self._applied_height < self._store.height:
                height = self._applied_height
                self._apply_block(
                    self._store.read_block(height),
                    self._store.location(height),
                )
        else:
            removed = self._store.discard_torn_tail()
            self.log.abort(pending.height)
            self.stats.wal_discarded += 1
            report["wal_discarded"] = 1
            report["torn_bytes"] = removed
        return report

    # -- the commit path ---------------------------------------------------

    def commit_batch(self, batch: Sequence[Transaction]) -> Optional[Block]:
        """Deterministically turn a consensus-ordered batch into a block."""
        accepted: list[Transaction] = []
        with self.stats.timed("validate", len(batch)):
            if self.verify_signatures:
                flags = self._verify_signatures(list(batch))
            else:
                flags = [True] * len(batch)
            for tx, ok in zip(batch, flags):
                if not ok:
                    self._reject(tx)
                    continue
                accepted.append(tx)
        if not accepted:
            return None
        with self.stats.timed("sequence", len(accepted)):
            sequenced = []
            for tx in accepted:
                sequenced.append(tx.with_tid(self._next_tid))
                self._next_tid += 1
        with self.stats.timed("package", len(sequenced)):
            # clamp to the parent header so block timestamps never regress
            # across heights, whatever a replica's clock or a stale client
            # timestamp claims (verify_local_chain rejects regressions)
            prev_ts = (
                self._store.header(self._store.height - 1).timestamp
                if self._store.height
                else 0
            )
            timestamp = max(
                int(self._clock.now_ms()),
                max(tx.ts for tx in sequenced),
                prev_ts,
            )
            # the block must be byte-identical on every replica, so it
            # carries no per-node identity: authenticity comes from
            # consensus itself
            block = Block.package(
                prev_hash=self._store.tip_hash or b"\x00" * 32,
                height=self._store.height,
                timestamp=timestamp,
                transactions=sequenced,
                packager=self._packager,
            )
        location = self._persist_block(block)
        if location is None:
            return None  # simulated crash consumed the persist stage
        self._apply_block(block, location)
        with self.stats.timed("notify"):
            for listener in self._block_listeners:
                listener(block)
        self.stats.blocks_committed += 1
        self.stats.txs_committed += len(sequenced)
        return block

    def adopt_block(self, block: Block) -> None:
        """Adopt a block produced elsewhere (sync / gossip catch-up).

        Same persist and apply stages as a local commit; validate checks
        chaining and the Merkle root instead of re-sequencing, and the
        notify stage is skipped (an adopted block is never re-announced).
        """
        with self.stats.timed("validate", len(block.transactions)):
            if block.header.height != self._store.height:
                raise StorageError(
                    f"cannot accept block {block.header.height} at height "
                    f"{self._store.height}"
                )
            if (self._store.tip_hash is not None
                    and block.header.prev_hash != self._store.tip_hash):
                raise StorageError(
                    f"block {block.header.height} does not chain to our tip"
                )
            if not block.verify_trans_root():
                raise StorageError(
                    f"block {block.header.height} has a corrupt transaction root"
                )
            if self._store.height:
                prev_ts = self._store.header(self._store.height - 1).timestamp
                if block.header.timestamp < prev_ts:
                    raise StorageError(
                        f"block {block.header.height} timestamp "
                        f"{block.header.timestamp} regresses below its "
                        f"parent's {prev_ts}"
                    )
            anchor = self._anchors.get(block.header.height)
            if anchor is not None:
                self.stats.anchor_checks += 1
                if block.header.block_hash() != anchor:
                    raise StorageError(
                        f"block {block.header.height} does not match the "
                        f"certified adoption anchor"
                    )
            if self.verify_signatures:
                signed = [tx for tx in block.transactions if tx.sig]
                if signed and not all(self._verify_signatures(signed)):
                    raise StorageError(
                        f"block {block.header.height} carries a "
                        f"transaction with an invalid signature"
                    )
        location = self._persist_block(block)
        if location is None:
            return
        self._apply_block(block, location)
        self.stats.blocks_adopted += 1

    # -- stages ------------------------------------------------------------

    def _reject(self, tx: Transaction) -> None:
        if len(self._rejected) == self._rejected.maxlen:
            self.stats.rejected_dropped += 1
        self._rejected.append(tx)
        self.stats.txs_rejected += 1

    def _pool(self) -> ThreadPoolExecutor:
        """The shared worker pool, created on first use (workers > 1)."""
        with self._pool_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="sebdb-ledger"
                )
            return self._executor

    def _pool_map(self, fn, *iterables) -> list:
        """``Executor.map`` with a serial inline fallback.

        A ``close()`` racing an in-flight commit can shut the pool down
        between the ``_pool()`` lookup and the dispatch; the executor
        then raises ``RuntimeError("cannot schedule new futures after
        shutdown")``.  The fallback computes the identical
        submission-ordered result inline instead of recreating a pool,
        so racing closers never leave an orphaned executor behind.
        """
        try:
            return list(self._pool().map(fn, *iterables))
        except RuntimeError:
            return [fn(*args) for args in zip(*iterables)]

    def close(self) -> None:
        """Release the worker pool (idempotent; the pipeline stays usable).

        Safe against concurrent close() calls and against commits in
        flight: the executor is detached under the lock, so exactly one
        closer shuts each pool down, and submitters either reuse the
        detached pool before shutdown (their tasks drain: shutdown waits)
        or fall back to inline execution via :meth:`_pool_map`.
        """
        with self._pool_lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def _verify_signatures(self, txs: Sequence[Transaction]) -> List[bool]:
        """Validate-stage signature check for a whole batch.

        Cache-aware (the verified-signature LRU answers with the *stored*
        verdict, never a blanket yes), deduplicated within the batch, and
        batched: cache misses go through the aggregate Schnorr check
        (:func:`repro.crypto.batch.verify_batch`), split into contiguous
        chunks across the worker pool when the batch is big enough.  The
        result is aligned with ``txs`` and agrees exactly with calling
        ``tx.verify_signature()`` on each transaction.
        """
        results: list[Optional[bool]] = [None] * len(txs)
        keys = [tx.hash() for tx in txs]
        #: tx hash -> index of the first occurrence still being verified
        pending_by_key: dict[bytes, int] = {}
        #: (duplicate index, first-occurrence index) to patch at the end
        duplicates: list[tuple[int, int]] = []
        pending: list[int] = []
        for index, tx in enumerate(txs):
            first = pending_by_key.get(keys[index])
            if first is not None:
                self.stats.sig_cache_hits += 1
                duplicates.append((index, first))
                continue
            cached = self._sig_cache.get(keys[index])
            if cached is not None:
                self.stats.sig_cache_hits += 1
                results[index] = cached
                continue
            self.stats.sig_checks += 1
            # structural screening mirrors Transaction.verify_signature
            if (not tx.sig or not tx.pubkey
                    or address_of(tx.pubkey) != tx.senid):
                results[index] = False
                continue
            pending_by_key[keys[index]] = index
            pending.append(index)
        if pending:
            if self.batch_verify:
                flags = self._batch_verify([txs[i] for i in pending])
            else:
                flags = [txs[i].verify_signature() for i in pending]
            for index, ok in zip(pending, flags):
                results[index] = ok
                if ok:
                    self._sig_cache.put(keys[index], True)
        for index, first in duplicates:
            results[index] = results[first]
        return [bool(entry) for entry in results]

    def _batch_verify(self, txs: Sequence[Transaction]) -> List[bool]:
        """Aggregate-verify ``txs``, chunked across the worker pool."""
        items = [(tx.pubkey, tx.signing_payload(), tx.sig) for tx in txs]
        chunks = max(1, min(self.workers, len(items) // _MIN_CHUNK_ITEMS))
        if chunks <= 1:
            outcomes = [verify_batch(items)]
        else:
            size = (len(items) + chunks - 1) // chunks
            spans = [items[i:i + size] for i in range(0, len(items), size)]
            # map() yields results in submission order: deterministic
            outcomes = self._pool_map(verify_batch, spans)
        self.stats.validate_chunks += len(outcomes)
        for outcome in outcomes:
            self.stats.sig_aggregate_checks += outcome.aggregate_checks
            self.stats.sig_single_checks += outcome.single_checks
        return [flag for outcome in outcomes for flag in outcome.valid]

    def _persist_block(self, block: Block) -> Optional[BlockLocation]:
        """Persist stage: intent record, segment append, commit record."""
        with self.stats.timed("persist", len(block.transactions)):
            data = block.to_bytes()
            self.log.begin(block.header.height, block.block_hash(), len(data))
            self.stats.wal_begun += 1
            if self._crash_persist is not None:
                mode, on_crash = self._crash_persist
                self._crash_persist = None
                if mode == CRASH_TORN:
                    self._store.simulate_torn_append(
                        data[: max(1, len(data) // 2)]
                    )
                else:
                    self._store.append_block(block, notify=False)
                if on_crash is not None:
                    on_crash()
                return None
            location = self._store.append_block(block, notify=False)
            self.log.commit(block.header.height)
            self.stats.wal_committed += 1
        return location

    def _apply_block(self, block: Block, location: BlockLocation) -> None:
        """Apply stage: execute transactions, then maintenance listeners.

        Execution is dependency-scheduled: :func:`plan_waves` groups the
        block's transactions into waves of ``(table, primary key)``
        independent writes, workers prepare each wave's effects
        concurrently, and the effects commit strictly in tid order - so
        the resulting catalog/index state is identical for any worker
        count (the fuzz-equivalence suite holds this to byte equality).
        """
        with self.stats.timed("apply", len(block.transactions)):
            for effect in self._execute_transactions(block):
                if effect.schema is not None:
                    self._catalog.apply_schema(effect.schema)
            self._store.notify_append_listeners(block, location)
            if block.transactions:
                self._next_tid = max(self._next_tid, block.last_tid + 1)
        self._applied_height = block.header.height + 1

    def _execute_transactions(self, block: Block) -> List[TxEffect]:
        """Prepare every transaction's effect, wave-parallel, tid-ordered."""
        txs = block.transactions
        if not txs:
            return []
        plan = plan_waves(txs)
        self.stats.apply_waves += len(plan.waves)
        self.stats.apply_conflicts += plan.conflicts
        effects: list[Optional[TxEffect]] = [None] * len(txs)
        for wave in plan.waves:
            if self.workers > 1 and len(wave) > 1:
                computed = self._pool_map(
                    prepare_effect, wave, [txs[i] for i in wave]
                )
            else:
                computed = [prepare_effect(i, txs[i]) for i in wave]
            for effect in computed:
                effects[effect.position] = effect
        return [effect for effect in effects if effect is not None]

    # -- durable engine checkpoints ----------------------------------------

    def record_checkpoint(
        self, seq: int, digest: bytes, votes: Sequence[str]
    ) -> None:
        """Persist a consensus checkpoint pinned to our chain position."""
        if self._store.tip_hash is None:
            return
        self.log.record_checkpoint(
            seq, digest, tuple(votes), self._store.height, self._store.tip_hash
        )
        self.stats.checkpoints_recorded += 1

    @property
    def chain_checkpoints(self) -> list[tuple[int, bytes]]:
        """Durable (height, tip_hash) anchors, oldest first."""
        return [(c.height, c.tip_hash) for c in self.log.checkpoints()]

    def add_adoption_anchor(self, height: int, block_hash: bytes) -> None:
        """Pin the block hash a bulk transfer must produce at ``height``.

        Anchors come from quorum-certified manifests (PBFT bulk state
        transfer): a gossip-fetched block adopted at an anchored height
        is rejected with :class:`StorageError` unless its hash matches,
        so a corrupted or equivocated payload can never extend the chain
        past a certified prefix.
        """
        if height < 0:
            raise LedgerError(f"anchor height cannot be negative: {height}")
        if not isinstance(block_hash, bytes) or len(block_hash) != 32:
            raise LedgerError("anchor hash must be a 32-byte digest")
        known = self._anchors.get(height)
        if known is not None and known != block_hash:
            raise LedgerError(
                f"conflicting adoption anchor for height {height}"
            )
        if known is None:
            self._anchors[height] = block_hash
            self.stats.anchors_trusted += 1

    @property
    def latest_engine_checkpoint(self) -> Optional[CheckpointRecord]:
        return self.log.latest_checkpoint()

    # -- plumbing ----------------------------------------------------------

    @property
    def next_tid(self) -> int:
        return self._next_tid

    @property
    def rejected(self) -> list[Transaction]:
        return list(self._rejected)

    @property
    def sig_cache(self) -> LRUCache[bytes, bool]:
        return self._sig_cache

    def add_block_listener(self, listener: Callable[[Block], None]) -> None:
        self._block_listeners.append(listener)

    # -- fault injection ---------------------------------------------------

    def crash_next_persist(
        self, mode: str = CRASH_TORN,
        on_crash: Optional[Callable[[], None]] = None,
    ) -> None:
        """Arm a one-shot simulated crash inside the next persist stage.

        ``torn`` writes the intent record plus half the block's bytes (a
        power cut mid-``write``); ``after-append`` completes the segment
        append but never writes the commit record.  ``on_crash`` runs at
        the crash point (chaos harnesses pass ``node.crash``); the
        pipeline then reports the persist as consumed instead of raising,
        so consensus keeps delivering to the surviving replicas.
        """
        if mode not in (CRASH_TORN, CRASH_AFTER_APPEND):
            raise LedgerError(f"unknown persist crash mode {mode!r}")
        self._crash_persist = (mode, on_crash)
