"""Write-path observability: per-stage counters and durations.

The read path got EXPLAIN ANALYZE in PR 3; :class:`LedgerStats` is the
write path's counterpart.  Every block that commits through the
:class:`~repro.ledger.pipeline.LedgerPipeline` increments one counter per
stage (validate / sequence / package / persist / apply / notify) and
accumulates the stage's wall time, so ``\\stats`` and the Fig 7 benchmark
can break a batch's commit latency down by stage.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, Iterator

#: canonical stage order, as the block lifecycle runs them
STAGES: tuple[str, ...] = (
    "validate", "sequence", "package", "persist", "apply", "notify"
)


@dataclasses.dataclass
class StageStats:
    """Counters for one pipeline stage."""

    calls: int = 0
    txs: int = 0
    wall_ms: float = 0.0

    def ms_per_call(self) -> float:
        return self.wall_ms / self.calls if self.calls else 0.0


@dataclasses.dataclass
class LedgerStats:
    """Counters the whole pipeline maintains (write-path observability)."""

    stages: Dict[str, StageStats] = dataclasses.field(
        default_factory=lambda: {name: StageStats() for name in STAGES}
    )
    #: blocks packaged locally from consensus-ordered batches
    blocks_committed: int = 0
    #: blocks adopted from peers (sync / gossip catch-up)
    blocks_adopted: int = 0
    txs_committed: int = 0
    #: transactions dropped in validate for invalid signatures
    txs_rejected: int = 0
    #: rejected transactions evicted from the bounded rejection buffer
    rejected_dropped: int = 0
    #: full Schnorr verifications actually executed
    sig_checks: int = 0
    #: verifications skipped because the verified-signature LRU hit
    sig_cache_hits: int = 0
    #: signature-batch chunks dispatched by the validate stage
    validate_chunks: int = 0
    #: aggregate (random-linear-combination) batch probes performed
    sig_aggregate_checks: int = 0
    #: per-signature fallbacks taken while bisecting a failing batch
    sig_single_checks: int = 0
    #: dependency waves scheduled by the apply stage
    apply_waves: int = 0
    #: write-write / barrier conflicts found while planning waves
    apply_conflicts: int = 0
    wal_begun: int = 0
    wal_committed: int = 0
    #: pending commit records resolved as complete on restart
    wal_replayed: int = 0
    #: pending commit records resolved as torn (tail truncated) on restart
    wal_discarded: int = 0
    #: durable engine checkpoints recorded through the commit log
    checkpoints_recorded: int = 0
    #: certified adoption anchors installed for bulk state transfer
    anchors_trusted: int = 0
    #: adopted blocks that were verified against an adoption anchor
    anchor_checks: int = 0

    def stage(self, name: str) -> StageStats:
        return self.stages[name]

    @contextlib.contextmanager
    def timed(self, name: str, txs: int = 0) -> Iterator[None]:
        """Time one stage invocation and fold it into the counters."""
        t0 = time.perf_counter()  # sebdb: allow[determinism] stats only
        try:
            yield
        finally:
            stage = self.stages[name]
            stage.calls += 1
            stage.txs += txs
            wall = time.perf_counter() - t0  # sebdb: allow[determinism] stats only
            stage.wall_ms += wall * 1000.0

    def stage_breakdown(self) -> Dict[str, float]:
        """Average wall ms per invocation, keyed by stage name."""
        return {name: self.stages[name].ms_per_call() for name in STAGES}

    def reset(self) -> None:
        for stage in self.stages.values():
            stage.calls = 0
            stage.txs = 0
            stage.wall_ms = 0.0
        self.blocks_committed = 0
        self.blocks_adopted = 0
        self.txs_committed = 0
        self.txs_rejected = 0
        self.rejected_dropped = 0
        self.sig_checks = 0
        self.sig_cache_hits = 0
        self.validate_chunks = 0
        self.sig_aggregate_checks = 0
        self.sig_single_checks = 0
        self.apply_waves = 0
        self.apply_conflicts = 0
        self.wal_begun = 0
        self.wal_committed = 0
        self.wal_replayed = 0
        self.wal_discarded = 0
        self.checkpoints_recorded = 0
        self.anchors_trusted = 0
        self.anchor_checks = 0

    def summary_lines(self) -> list[str]:
        """Human-readable rendering (folded into the CLI's \\stats)."""
        lines = [
            f"write path:   {self.blocks_committed} committed, "
            f"{self.blocks_adopted} adopted, {self.txs_rejected} tx rejected "
            f"({self.rejected_dropped} dropped from buffer)",
            f"signatures:   {self.sig_checks} verified, "
            f"{self.sig_cache_hits} cache hits, "
            f"{self.sig_aggregate_checks} aggregate / "
            f"{self.sig_single_checks} single probes in "
            f"{self.validate_chunks} chunk(s)",
            f"scheduling:   {self.apply_waves} wave(s), "
            f"{self.apply_conflicts} conflict(s)",
            f"commit log:   {self.wal_committed}/{self.wal_begun} records, "
            f"{self.wal_replayed} replayed, {self.wal_discarded} discarded, "
            f"{self.checkpoints_recorded} checkpoints",
            f"anchors:      {self.anchors_trusted} trusted, "
            f"{self.anchor_checks} adoption checks",
            "stages:",
        ]
        for name in STAGES:
            stage = self.stages[name]
            lines.append(
                f"  {name:<9} {stage.calls:>6} call(s)  "
                f"{stage.wall_ms:8.3f} ms total  "
                f"{stage.ms_per_call():8.4f} ms/call"
            )
        return lines
