"""Failure detection and membership.

A minimal phi-style heartbeat failure detector on top of the bus: every
member broadcasts heartbeats each interval; a member missing more than
``suspect_after`` intervals is marked suspected, which the gossip layer
and consensus view changes consume.
"""

from __future__ import annotations

from typing import Any, Optional

from .bus import MessageBus

HEARTBEAT = "membership-heartbeat"


class FailureDetector:
    """Heartbeat-based failure detector for one node."""

    def __init__(
        self,
        node_id: str,
        bus: MessageBus,
        interval_ms: float = 50.0,
        suspect_after: int = 3,
    ) -> None:
        self.node_id = node_id
        self._bus = bus
        self._interval = interval_ms
        self._suspect_after = suspect_after
        self._last_seen: dict[str, float] = {}
        self._running = False
        self._started_at: Optional[float] = None

    def start(self) -> None:
        self._running = True
        if self._started_at is None:
            self._started_at = self._bus.clock.now_ms()
        self._tick()

    def stop(self) -> None:
        self._running = False

    def observe(self, src: str, message: Any) -> bool:
        """Feed a received message; returns True when it was a heartbeat."""
        if isinstance(message, dict) and message.get("kind") == HEARTBEAT:
            self._last_seen[src] = self._bus.clock.now_ms()
            return True
        # any traffic proves liveness
        self._last_seen[src] = self._bus.clock.now_ms()
        return False

    def suspected(self) -> set[str]:
        """Members not heard from for ``suspect_after`` intervals.

        A peer with no observed traffic at all is measured against the
        detector's start time, so nobody is suspected before a full grace
        window of ``suspect_after`` heartbeat intervals has elapsed.
        """
        now = self._bus.clock.now_ms()
        horizon = self._interval * self._suspect_after
        grace_origin = self._started_at if self._started_at is not None else now
        out = set()
        for node_id in self._bus.node_ids:
            if node_id == self.node_id:
                continue
            last = self._last_seen.get(node_id, grace_origin)
            if now - last > horizon:
                out.add(node_id)
        return out

    def alive(self) -> set[str]:
        return {
            n for n in self._bus.node_ids
            if n != self.node_id and n not in self.suspected()
        }

    def _tick(self) -> None:
        if not self._running:
            return
        self._bus.broadcast(self.node_id, {"kind": HEARTBEAT})
        self._bus.schedule(self._interval, self._tick)
