"""Discrete-event message bus.

The cluster of the paper's evaluation (4 servers, 1 Gbps) is simulated
in-process: nodes register message handlers, the bus delivers messages
after a configurable latency (plus deterministic jitter), and a priority
queue driven by the simulated clock executes everything in timestamp
order.  Experiments therefore run deterministically and orders of
magnitude faster than wall time while preserving the *ordering* behaviour
that consensus depends on.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from ..common.clock import Clock
from ..common.errors import NetworkError

Handler = Callable[[str, Any], None]


class MessageBus:
    """Latency-modelled, deterministic in-process network."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        latency_ms: float = 1.0,
        jitter_ms: float = 0.2,
        seed: int = 0,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss_rate must be in [0, 1)")
        self.clock = clock or Clock()
        self._latency = latency_ms
        self._jitter = jitter_ms
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        #: (fire_time, seq, action) - seq breaks ties deterministically
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self.messages_sent = 0
        self.messages_dropped = 0

    # -- membership ---------------------------------------------------------

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise NetworkError(f"node id {node_id!r} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._handlers)

    def fail(self, node_id: str) -> None:
        """Partition a node away: its messages are dropped both ways."""
        self._down.add(node_id)

    def heal(self, node_id: str) -> None:
        self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # -- sending --------------------------------------------------------------

    def _delay(self, override: Optional[float]) -> float:
        base = self._latency if override is None else override
        return max(0.0, base + self._rng.uniform(0, self._jitter))

    def send(
        self, src: str, dst: str, message: Any, delay_ms: Optional[float] = None
    ) -> None:
        """Deliver ``message`` to ``dst`` after the network latency."""
        self.messages_sent += 1
        if src in self._down or dst in self._down or dst not in self._handlers:
            self.messages_dropped += 1
            return
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.messages_dropped += 1
            return
        handler = self._handlers[dst]
        fire = self.clock.now_ms() + self._delay(delay_ms)

        def deliver() -> None:
            if dst in self._down:
                self.messages_dropped += 1
                return
            handler(src, message)

        heapq.heappush(self._queue, (fire, self.clock.next_seq(), deliver))

    def broadcast(
        self, src: str, message: Any, include_self: bool = False,
        delay_ms: Optional[float] = None,
    ) -> None:
        for node_id in self.node_ids:
            if node_id == src and not include_self:
                continue
            self.send(src, node_id, message, delay_ms=delay_ms)

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay_ms`` of simulated time (a timer)."""
        fire = self.clock.now_ms() + max(0.0, delay_ms)
        heapq.heappush(self._queue, (fire, self.clock.next_seq(), action))

    # -- event loop ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the earliest pending event; returns False when idle."""
        if not self._queue:
            return False
        fire, _seq, action = heapq.heappop(self._queue)
        if fire > self.clock.now_ms():
            self.clock.advance(fire - self.clock.now_ms())
        action()
        return True

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events executed."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise NetworkError(
                    f"bus did not go idle within {max_events} events - "
                    f"likely a livelock in a protocol implementation"
                )
        return executed

    def run_for(self, duration_ms: float, max_events: int = 1_000_000) -> int:
        """Run events up to now+duration; leaves later events queued."""
        deadline = self.clock.now_ms() + duration_ms
        executed = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            executed += 1
            if executed >= max_events:
                raise NetworkError("too many events within the window")
        if self.clock.now_ms() < deadline:
            self.clock.advance(deadline - self.clock.now_ms())
        return executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
