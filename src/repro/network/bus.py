"""Discrete-event message bus.

The cluster of the paper's evaluation (4 servers, 1 Gbps) is simulated
in-process: nodes register message handlers, the bus delivers messages
after a configurable latency (plus deterministic jitter), and a priority
queue driven by the simulated clock executes everything in timestamp
order.  Experiments therefore run deterministically and orders of
magnitude faster than wall time while preserving the *ordering* behaviour
that consensus depends on.

Fault injection happens at two granularities:

* whole-node: :meth:`MessageBus.fail` / :meth:`MessageBus.heal` partition
  a node away entirely (both directions);
* per-link: :meth:`MessageBus.set_link_fault` attaches a
  :class:`LinkFault` to one *directed* (src, dst) pair - or to wildcard
  patterns ``(src, "*")`` / ``("*", dst)`` / ``("*", "*")`` - supporting
  asymmetric partitions, loss/delay spikes, duplication, reordering and
  payload corruption on exactly the links a chaos schedule names.

Every fault consumes randomness from the bus RNG *only when its rate is
non-zero*, so configurations without faults replay the exact event
sequence they always did.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from typing import Any, Callable, Iterable, Optional

from ..common.clock import Clock
from ..common.errors import NetworkError

Handler = Callable[[str, Any], None]

#: wildcard endpoint accepted by the per-link fault API
ANY = "*"


@dataclasses.dataclass
class LinkFault:
    """Fault filter for one directed link (or a wildcard pattern).

    Attributes
    ----------
    drop:
        Hard-drop every message on this link (an asymmetric partition
        when only one direction is configured).
    loss_rate:
        Probability each message is lost, on top of the bus-wide rate.
    extra_delay_ms:
        Fixed additional latency (a per-link delay spike).
    duplicate_rate:
        Probability a delivered message is delivered *twice*.
    reorder_rate:
        Probability a message is held back by a random extra delay of up
        to ``reorder_window_ms``, letting later traffic overtake it.
    reorder_window_ms:
        Maximum hold-back applied to reordered messages.
    corrupt_rate:
        Probability the delivered payload is corrupted (every ``bytes``
        leaf inside the message gets its first byte flipped - digests and
        serialized blocks/transactions stop verifying, while the message
        structure stays parseable).
    """

    drop: bool = False
    loss_rate: float = 0.0
    extra_delay_ms: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_window_ms: float = 5.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for field in ("loss_rate", "duplicate_rate", "reorder_rate",
                      "corrupt_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise NetworkError(f"{field} must be in [0, 1], got {value}")
        if self.extra_delay_ms < 0 or self.reorder_window_ms < 0:
            raise NetworkError("delays cannot be negative")

    def merged_with(self, other: "LinkFault") -> "LinkFault":
        """Combine two matching filters (worst case of each field)."""
        return LinkFault(
            drop=self.drop or other.drop,
            loss_rate=max(self.loss_rate, other.loss_rate),
            extra_delay_ms=max(self.extra_delay_ms, other.extra_delay_ms),
            duplicate_rate=max(self.duplicate_rate, other.duplicate_rate),
            reorder_rate=max(self.reorder_rate, other.reorder_rate),
            reorder_window_ms=max(self.reorder_window_ms,
                                  other.reorder_window_ms),
            corrupt_rate=max(self.corrupt_rate, other.corrupt_rate),
        )


def corrupt_payload(message: Any) -> Any:
    """Deep-copy ``message`` flipping the first byte of every bytes leaf.

    Containers (dict/list/tuple) are rebuilt so the sender's copy is
    untouched; non-bytes leaves pass through unchanged, keeping the
    corrupted message *parseable* but cryptographically broken - exactly
    how a flipped bit on the wire shows up above a checksum-free
    transport.
    """
    if isinstance(message, dict):
        return {k: corrupt_payload(v) for k, v in message.items()}
    if isinstance(message, list):
        return [corrupt_payload(v) for v in message]
    if isinstance(message, tuple):
        return tuple(corrupt_payload(v) for v in message)
    if isinstance(message, (bytes, bytearray)) and len(message) > 0:
        flipped = bytearray(message)
        flipped[0] ^= 0xFF
        return bytes(flipped)
    return message


class MessageBus:
    """Latency-modelled, deterministic in-process network."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        latency_ms: float = 1.0,
        jitter_ms: float = 0.2,
        seed: int = 0,
        loss_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError("loss_rate must be in [0, 1)")
        self.clock = clock or Clock()
        self._latency = latency_ms
        self._jitter = jitter_ms
        self._loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._link_faults: dict[tuple[str, str], LinkFault] = {}
        #: (fire_time, seq, action) - seq breaks ties deterministically
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self.messages_sent = 0
        self.messages_dropped = 0
        #: sends whose destination was never registered - counted apart
        #: from fault drops so chaos assertions on drop counts are exact
        self.messages_unroutable = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.messages_corrupted = 0

    # -- membership ---------------------------------------------------------

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise NetworkError(f"node id {node_id!r} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._handlers)

    def fail(self, node_id: str) -> None:
        """Partition a node away: its messages are dropped both ways."""
        self._down.add(node_id)

    def heal(self, node_id: str) -> None:
        self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # -- per-link fault filters ---------------------------------------------

    def set_link_fault(self, src: str, dst: str, **fields: Any) -> LinkFault:
        """Attach (or update) the fault filter on the directed link
        ``src -> dst``; either endpoint may be the wildcard ``"*"``."""
        current = self._link_faults.get((src, dst), LinkFault())
        fault = dataclasses.replace(current, **fields)
        self._link_faults[(src, dst)] = fault
        return fault

    def clear_link_fault(self, src: str, dst: str) -> None:
        self._link_faults.pop((src, dst), None)

    def clear_link_faults(self) -> None:
        self._link_faults.clear()

    def link_fault(self, src: str, dst: str) -> Optional[LinkFault]:
        """The merged filter applying to ``src -> dst`` (None when clean)."""
        if not self._link_faults:
            return None
        merged: Optional[LinkFault] = None
        for key in ((src, dst), (src, ANY), (ANY, dst), (ANY, ANY)):
            fault = self._link_faults.get(key)
            if fault is not None:
                merged = fault if merged is None else merged.merged_with(fault)
        return merged

    def partition(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        symmetric: bool = True,
    ) -> None:
        """Sever every link from ``group_a`` to ``group_b``.

        ``symmetric=False`` leaves the reverse direction intact - the
        asymmetric partitions that break naive failure detectors.
        """
        a, b = list(group_a), list(group_b)
        for src in a:
            for dst in b:
                self.set_link_fault(src, dst, drop=True)
        if symmetric:
            for src in b:
                for dst in a:
                    self.set_link_fault(src, dst, drop=True)

    def heal_partition(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> None:
        """Remove the ``drop`` flags a :meth:`partition` call installed."""
        a, b = list(group_a), list(group_b)
        for src in a + b:
            for dst in a + b:
                fault = self._link_faults.get((src, dst))
                if fault is not None and fault.drop:
                    updated = dataclasses.replace(fault, drop=False)
                    if updated == LinkFault():
                        self._link_faults.pop((src, dst))
                    else:
                        self._link_faults[(src, dst)] = updated

    # -- sending --------------------------------------------------------------

    def _delay(self, override: Optional[float], fifo: bool = False) -> float:
        base = self._latency if override is None else override
        if fifo:
            return max(0.0, base)
        return max(0.0, base + self._rng.uniform(0, self._jitter))

    def send(
        self, src: str, dst: str, message: Any,
        delay_ms: Optional[float] = None, fifo: bool = False,
    ) -> None:
        """Deliver ``message`` to ``dst`` after the network latency.

        ``fifo=True`` models an ordered byte stream (one TCP connection,
        e.g. client submissions): no per-message jitter, so same-delay
        messages arrive in send order.  Link faults still apply - the
        stream can lose, duplicate, delay, or corrupt messages.
        """
        self.messages_sent += 1
        if dst not in self._handlers:
            self.messages_unroutable += 1
            return
        if src in self._down or dst in self._down:
            self.messages_dropped += 1
            return
        fault = self.link_fault(src, dst)
        if fault is not None and fault.drop:
            self.messages_dropped += 1
            return
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.messages_dropped += 1
            return
        if fault is not None:
            if fault.loss_rate and self._rng.random() < fault.loss_rate:
                self.messages_dropped += 1
                return
            if fault.corrupt_rate and self._rng.random() < fault.corrupt_rate:
                message = corrupt_payload(message)
                self.messages_corrupted += 1
        handler = self._handlers[dst]
        fire = self.clock.now_ms() + self._delay(delay_ms, fifo)
        if fault is not None:
            fire += fault.extra_delay_ms
            if fault.reorder_rate and self._rng.random() < fault.reorder_rate:
                fire += self._rng.uniform(0, fault.reorder_window_ms)
                self.messages_reordered += 1

        def deliver() -> None:
            if dst in self._down:
                self.messages_dropped += 1
                return
            handler(src, message)

        heapq.heappush(self._queue, (fire, self.clock.next_seq(), deliver))
        if (fault is not None and fault.duplicate_rate
                and self._rng.random() < fault.duplicate_rate):
            self.messages_duplicated += 1
            echo = fire + self._rng.uniform(0, self._jitter or 0.1)
            heapq.heappush(self._queue, (echo, self.clock.next_seq(), deliver))

    def broadcast(
        self, src: str, message: Any, include_self: bool = False,
        delay_ms: Optional[float] = None,
    ) -> None:
        for node_id in self.node_ids:
            if node_id == src and not include_self:
                continue
            self.send(src, node_id, message, delay_ms=delay_ms)

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay_ms`` of simulated time (a timer)."""
        fire = self.clock.now_ms() + max(0.0, delay_ms)
        heapq.heappush(self._queue, (fire, self.clock.next_seq(), action))

    # -- event loop ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the earliest pending event; returns False when idle."""
        if not self._queue:
            return False
        fire, _seq, action = heapq.heappop(self._queue)
        if fire > self.clock.now_ms():
            self.clock.advance(fire - self.clock.now_ms())
        action()
        return True

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events executed."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise NetworkError(
                    f"bus did not go idle within {max_events} events - "
                    f"likely a livelock in a protocol implementation"
                )
        return executed

    def run_for(self, duration_ms: float, max_events: int = 1_000_000) -> int:
        """Run events up to now+duration; leaves later events queued."""
        deadline = self.clock.now_ms() + duration_ms
        executed = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            executed += 1
            if executed >= max_events:
                raise NetworkError("too many events within the window")
        if self.clock.now_ms() < deadline:
            self.clock.advance(deadline - self.clock.now_ms())
        return executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
