"""Simulated network: message bus, gossip, failure detection."""

from .bus import MessageBus
from .gossip import GossipNode
from .membership import FailureDetector

__all__ = ["FailureDetector", "GossipNode", "MessageBus"]
