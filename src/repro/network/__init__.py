"""Simulated network: message bus, gossip, failure detection."""

from .bus import ANY, LinkFault, MessageBus, corrupt_payload
from .gossip import GossipNode
from .membership import FailureDetector

__all__ = [
    "ANY",
    "FailureDetector",
    "GossipNode",
    "LinkFault",
    "MessageBus",
    "corrupt_payload",
]
