"""Gossip dissemination (section III-B, network layer).

SEBDB uses gossip for block propagation and data recovery.  Each node that
learns a new rumor pushes it to ``fanout`` random peers per round; rounds
repeat until no node has fresh rumors.  An anti-entropy pass lets a node
that was partitioned pull everything it missed, which is how a recovering
full node catches up with the chain.

Anti-entropy advertises a **height watermark**, not the full id list:
numbered rumor ids (``block-000000000042``) are summarised per prefix as
``{floor, contig, recent}`` - the lowest sequence held, the top of the
contiguous range above it, and a short digest of out-of-order ids beyond
that - so the pull request stays O(prefixes), not O(chain length).  The
responder streams missing rumors back in bounded chunks (``more`` flag);
the requester re-pulls only while it is still making progress, so a
buggy or malicious peer cannot trap it in a request loop.

Every inbound message is schema-checked first: non-dict payloads or
messages with missing/mistyped fields (e.g. bit-flipped by a corrupting
link) are counted in ``dropped_malformed`` and dropped, never raised.
"""

from __future__ import annotations

import random
import re
import zlib
from typing import Any, Callable, Optional

from .bus import MessageBus

#: message kinds
GOSSIP_PUSH = "gossip-push"
GOSSIP_PULL = "gossip-pull"
GOSSIP_PULL_REPLY = "gossip-pull-reply"

#: rumor ids ending in digits are summarised by (prefix, sequence)
_NUMBERED = re.compile(r"^(.*?)(\d+)$")

#: out-of-order ids advertised verbatim per prefix before falling back to
#: "responder re-sends, learner dedups"
_RECENT_CAP = 32
#: non-numbered ids advertised verbatim (rare: block rumors are numbered)
_PLAIN_CAP = 128


def _split_rumor_id(rumor_id: str) -> tuple[Optional[str], int]:
    """``block-0007`` -> ("block-", 7); plain ids -> (None, 0)."""
    match = _NUMBERED.match(rumor_id)
    if match is None:
        return None, 0
    return match.group(1), int(match.group(2))


class GossipNode:
    """One gossip participant; owns a rumor store keyed by rumor id."""

    def __init__(
        self,
        node_id: str,
        bus: MessageBus,
        fanout: int = 2,
        round_ms: float = 5.0,
        seed: int = 0,
        on_rumor: Optional[Callable[[str, Any], None]] = None,
        validate: Optional[Callable[[str, Any], bool]] = None,
        pull_chunk: int = 64,
    ) -> None:
        self.node_id = node_id
        self._bus = bus
        self._fanout = fanout
        self._round_ms = round_ms
        # crc32 is a stable digest: Python's salted str hash() would make
        # peer selection differ between processes and break reproducibility
        self._rng = random.Random(seed ^ zlib.crc32(node_id.encode("utf-8")))
        self._rumors: dict[str, Any] = {}
        #: rumor id -> remaining push rounds (rumor mongering budget)
        self._budget: dict[str, int] = {}
        self._on_rumor = on_rumor
        self._validate = validate
        self._round_pending = False
        self._pull_chunk = max(1, pull_chunk)
        #: malformed inbound messages dropped (schema/type violations)
        self.dropped_malformed = 0
        bus.register(node_id, self._handle)

    # -- public -------------------------------------------------------------

    @property
    def rumors(self) -> dict[str, Any]:
        return dict(self._rumors)

    def knows(self, rumor_id: str) -> bool:
        return rumor_id in self._rumors

    def publish(self, rumor_id: str, payload: Any) -> None:
        """Inject a new rumor at this node and start pushing it."""
        self._learn(rumor_id, payload)

    def anti_entropy(self, peer: str) -> None:
        """Pull everything ``peer`` knows that we do not (recovery)."""
        self._bus.send(
            self.node_id, peer,
            {
                "kind": GOSSIP_PULL,
                "prefixes": self._watermarks(),
                "plain": self._plain_ids(),
                "limit": self._pull_chunk,
            },
        )

    # -- watermark summary ---------------------------------------------------

    def _watermarks(self) -> dict[str, dict[str, Any]]:
        """Per-prefix ``{floor, contig, recent}`` summary of numbered ids."""
        groups: dict[str, list[int]] = {}
        for rumor_id in sorted(self._rumors):
            prefix, seq = _split_rumor_id(rumor_id)
            if prefix is not None:
                groups.setdefault(prefix, []).append(seq)
        summary: dict[str, dict[str, Any]] = {}
        for prefix, seqs in sorted(groups.items()):
            seqs = sorted(set(seqs))
            floor = seqs[0]
            contig = floor
            index = 1
            while index < len(seqs) and seqs[index] == contig + 1:
                contig += 1
                index += 1
            recent = seqs[index:][-_RECENT_CAP:]
            summary[prefix] = {
                "floor": floor, "contig": contig, "recent": recent,
            }
        return summary

    def _plain_ids(self) -> list[str]:
        plain = [
            rumor_id for rumor_id in sorted(self._rumors)
            if _split_rumor_id(rumor_id)[0] is None
        ]
        return plain[-_PLAIN_CAP:]

    def _requester_lacks(self, rumor_id: str, message: dict) -> bool:
        """True when the pull summary says the requester misses this id."""
        prefix, seq = _split_rumor_id(rumor_id)
        if prefix is None:
            return rumor_id not in message["_plain_set"]
        marks = message["prefixes"].get(prefix)
        if marks is None:
            return True
        if marks["floor"] <= seq <= marks["contig"]:
            return False
        return seq not in marks["_recent_set"]

    # -- internals -----------------------------------------------------------

    def _peers(self) -> list[str]:
        return [n for n in self._bus.node_ids if n != self.node_id]

    def _learn(self, rumor_id: str, payload: Any) -> bool:
        if rumor_id in self._rumors:
            return False
        if self._validate is not None and not self._validate(rumor_id, payload):
            # a corrupted rumor must not be stored: once stored, this node
            # would cover the id with its anti-entropy watermark and a
            # clean copy could never be re-fetched
            return False
        self._rumors[rumor_id] = payload
        # push for O(log n) + slack rounds - enough for full coverage whp
        n = max(len(self._bus.node_ids), 2)
        self._budget[rumor_id] = max(2, n.bit_length() + 1)
        if self._on_rumor is not None:
            self._on_rumor(rumor_id, payload)
        self._schedule_round(0.0)
        return True

    def _schedule_round(self, delay_ms: float) -> None:
        if self._round_pending:
            return
        self._round_pending = True
        self._bus.schedule(delay_ms, self._round)

    def _round(self) -> None:
        """Push every still-hot rumor to ``fanout`` random peers."""
        self._round_pending = False
        hot = sorted(rid for rid, budget in self._budget.items() if budget > 0)
        if not hot:
            return
        peers = self._peers()
        for rumor_id in hot:
            # spend the budget even with no peers, or a lone node spins
            self._budget[rumor_id] -= 1
            if not peers:
                continue
            targets = self._rng.sample(peers, min(self._fanout, len(peers)))
            for target in targets:
                self._bus.send(
                    self.node_id, target,
                    {
                        "kind": GOSSIP_PUSH,
                        "rumor_id": rumor_id,
                        "payload": self._rumors[rumor_id],
                    },
                )
        if any(budget > 0 for budget in self._budget.values()):
            self._schedule_round(self._round_ms)

    # -- message handling ----------------------------------------------------

    def _handle(self, src: str, message: Any) -> None:
        if not isinstance(message, dict):
            self.dropped_malformed += 1
            return
        kind = message.get("kind")
        if kind == GOSSIP_PUSH:
            self._on_push(message)
        elif kind == GOSSIP_PULL:
            self._on_pull(src, message)
        elif kind == GOSSIP_PULL_REPLY:
            self._on_pull_reply(src, message)
        else:
            self.dropped_malformed += 1

    def _on_push(self, message: dict) -> None:
        rumor_id = message.get("rumor_id")
        if not isinstance(rumor_id, str) or "payload" not in message:
            self.dropped_malformed += 1
            return
        if rumor_id not in self._rumors:
            self._learn(rumor_id, message["payload"])

    def _pull_well_formed(self, message: dict) -> bool:
        prefixes = message.get("prefixes")
        plain = message.get("plain")
        limit = message.get("limit")
        if (not isinstance(prefixes, dict) or not isinstance(plain, list)
                or not isinstance(limit, int) or limit < 1):
            return False
        for prefix, marks in prefixes.items():
            if not isinstance(prefix, str) or not isinstance(marks, dict):
                return False
            floor = marks.get("floor")
            contig = marks.get("contig")
            recent = marks.get("recent")
            if (not isinstance(floor, int) or not isinstance(contig, int)
                    or not isinstance(recent, list)
                    or not all(isinstance(seq, int) for seq in recent)):
                return False
        return all(isinstance(rumor_id, str) for rumor_id in plain)

    def _on_pull(self, src: str, message: dict) -> None:
        if not self._pull_well_formed(message):
            self.dropped_malformed += 1
            return
        # precompute membership sets once, not per stored rumor
        message["_plain_set"] = frozenset(message["plain"])
        for marks in message["prefixes"].values():
            marks["_recent_set"] = frozenset(marks["recent"])
        missing = [
            rumor_id for rumor_id in sorted(self._rumors)
            if self._requester_lacks(rumor_id, message)
        ]
        if not missing:
            return
        limit = min(message["limit"], self._pull_chunk)
        chunk = missing[:limit]
        self._bus.send(
            self.node_id, src,
            {
                "kind": GOSSIP_PULL_REPLY,
                "rumors": {rid: self._rumors[rid] for rid in chunk},
                "more": len(missing) > len(chunk),
            },
        )

    def _on_pull_reply(self, src: str, message: dict) -> None:
        rumors = message.get("rumors")
        if not isinstance(rumors, dict) or not all(
            isinstance(rumor_id, str) for rumor_id in rumors
        ):
            self.dropped_malformed += 1
            return
        progress = False
        for rumor_id, payload in sorted(rumors.items()):
            if self._learn(rumor_id, payload):
                progress = True
        # chunked transfer: keep pulling while the peer holds more AND we
        # actually learned something - a peer replying "more" forever
        # without new rumors cannot spin us
        if message.get("more") is True and progress:
            self.anti_entropy(src)
