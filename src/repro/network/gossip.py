"""Gossip dissemination (section III-B, network layer).

SEBDB uses gossip for block propagation and data recovery.  Each node that
learns a new rumor pushes it to ``fanout`` random peers per round; rounds
repeat until no node has fresh rumors.  An anti-entropy pass lets a node
that was partitioned pull everything it missed, which is how a recovering
full node catches up with the chain.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable, Optional

from .bus import MessageBus

#: message kinds
GOSSIP_PUSH = "gossip-push"
GOSSIP_PULL = "gossip-pull"
GOSSIP_PULL_REPLY = "gossip-pull-reply"


class GossipNode:
    """One gossip participant; owns a rumor store keyed by rumor id."""

    def __init__(
        self,
        node_id: str,
        bus: MessageBus,
        fanout: int = 2,
        round_ms: float = 5.0,
        seed: int = 0,
        on_rumor: Optional[Callable[[str, Any], None]] = None,
        validate: Optional[Callable[[str, Any], bool]] = None,
    ) -> None:
        self.node_id = node_id
        self._bus = bus
        self._fanout = fanout
        self._round_ms = round_ms
        # crc32 is a stable digest: Python's salted str hash() would make
        # peer selection differ between processes and break reproducibility
        self._rng = random.Random(seed ^ zlib.crc32(node_id.encode("utf-8")))
        self._rumors: dict[str, Any] = {}
        #: rumor id -> remaining push rounds (rumor mongering budget)
        self._budget: dict[str, int] = {}
        self._on_rumor = on_rumor
        self._validate = validate
        self._round_pending = False
        bus.register(node_id, self._handle)

    # -- public -------------------------------------------------------------

    @property
    def rumors(self) -> dict[str, Any]:
        return dict(self._rumors)

    def knows(self, rumor_id: str) -> bool:
        return rumor_id in self._rumors

    def publish(self, rumor_id: str, payload: Any) -> None:
        """Inject a new rumor at this node and start pushing it."""
        self._learn(rumor_id, payload)

    def anti_entropy(self, peer: str) -> None:
        """Pull everything ``peer`` knows that we do not (recovery)."""
        self._bus.send(
            self.node_id, peer,
            {"kind": GOSSIP_PULL, "have": sorted(self._rumors)},
        )

    # -- internals -----------------------------------------------------------

    def _peers(self) -> list[str]:
        return [n for n in self._bus.node_ids if n != self.node_id]

    def _learn(self, rumor_id: str, payload: Any) -> None:
        if rumor_id in self._rumors:
            return
        if self._validate is not None and not self._validate(rumor_id, payload):
            # a corrupted rumor must not be stored: once stored, this node
            # would advertise the id in anti-entropy ``have`` lists and a
            # clean copy could never be re-fetched
            return
        self._rumors[rumor_id] = payload
        # push for O(log n) + slack rounds - enough for full coverage whp
        n = max(len(self._bus.node_ids), 2)
        self._budget[rumor_id] = max(2, n.bit_length() + 1)
        if self._on_rumor is not None:
            self._on_rumor(rumor_id, payload)
        self._schedule_round(0.0)

    def _schedule_round(self, delay_ms: float) -> None:
        if self._round_pending:
            return
        self._round_pending = True
        self._bus.schedule(delay_ms, self._round)

    def _round(self) -> None:
        """Push every still-hot rumor to ``fanout`` random peers."""
        self._round_pending = False
        hot = sorted(rid for rid, budget in self._budget.items() if budget > 0)
        if not hot:
            return
        peers = self._peers()
        for rumor_id in hot:
            # spend the budget even with no peers, or a lone node spins
            self._budget[rumor_id] -= 1
            if not peers:
                continue
            targets = self._rng.sample(peers, min(self._fanout, len(peers)))
            for target in targets:
                self._bus.send(
                    self.node_id, target,
                    {
                        "kind": GOSSIP_PUSH,
                        "rumor_id": rumor_id,
                        "payload": self._rumors[rumor_id],
                    },
                )
        if any(budget > 0 for budget in self._budget.values()):
            self._schedule_round(self._round_ms)

    def _handle(self, src: str, message: Any) -> None:
        kind = message.get("kind")
        if kind == GOSSIP_PUSH:
            rumor_id = message["rumor_id"]
            if rumor_id not in self._rumors:
                self._learn(rumor_id, message["payload"])
        elif kind == GOSSIP_PULL:
            have = set(message["have"])
            missing = {
                rid: payload
                for rid, payload in self._rumors.items()
                if rid not in have
            }
            if missing:
                self._bus.send(
                    self.node_id, src,
                    {"kind": GOSSIP_PULL_REPLY, "rumors": missing},
                )
        elif kind == GOSSIP_PULL_REPLY:
            for rumor_id, payload in sorted(message["rumors"].items()):
                self._learn(rumor_id, payload)
