"""Exception hierarchy for SEBDB.

Every error raised by the library derives from :class:`SebdbError` so that
applications can catch a single base class.  Sub-classes are grouped by the
layer that raises them (parsing, catalog, storage, consensus, verification).
"""

from __future__ import annotations


class SebdbError(Exception):
    """Base class for all SEBDB errors."""


class ConfigError(SebdbError):
    """Invalid configuration value."""


class CodecError(SebdbError):
    """Raised when (de)serialization of a block or transaction fails."""


class ParseError(SebdbError):
    """Raised by the SQL-like parser on malformed input.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset in the source text where the error was detected,
        or ``None`` when unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class CatalogError(SebdbError):
    """Schema/catalog level problem (unknown table, duplicate table, ...)."""


class SchemaError(CatalogError):
    """A tuple does not conform to its declared table schema."""


class StorageError(SebdbError):
    """Block store failure (corrupt segment, missing block, ...)."""


class LedgerError(SebdbError):
    """Write-path pipeline failure (commit-log corruption, torn append)."""


class ShardError(SebdbError):
    """Sharded-topology failure (routing, cross-shard commit, placement)."""


class IndexError_(SebdbError):
    """Index maintenance or lookup failure.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class QueryError(SebdbError):
    """Semantic error while planning or executing a query."""


class ConsensusError(SebdbError):
    """Consensus engine failure (no quorum, byzantine behaviour, ...)."""


class NetworkError(SebdbError):
    """Simulated network failure."""


class TimeoutError_(SebdbError):
    """A client request missed its overall deadline.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`.
    """


class RetryExhausted(SebdbError):
    """A resilient client gave up after its retry budget ran out.

    The transaction *may or may not* have committed (the final ack could
    have been lost); callers resolve the ambiguity with a read or by
    resubmitting under the same nonce, which consensus deduplicates.
    """


class DivergenceError(SebdbError):
    """The safety contract failed after a chaos run.

    Raised by the invariant checker when honest nodes hold conflicting
    chains, an acknowledged transaction is missing, or a transaction
    committed more than once.
    """


class AccessDenied(SebdbError):
    """Access-control rejection for a channel or operation."""


class VerificationError(SebdbError):
    """Raised by a thin client when a query result fails authentication.

    This means either the soundness or the completeness check on the
    verification object (VO) did not hold - i.e. the serving full node
    returned tampered, forged, or truncated results.
    """


class SignatureError(SebdbError):
    """Invalid digital signature on a transaction or block."""


class ContractError(SebdbError):
    """Smart-contract compilation or execution failure."""
