"""Byte-budgeted LRU cache.

Backs both cache policies compared in Fig 22: *block cache* (whole blocks
keyed by block id) and *transaction cache* (individual tuples keyed by
(block id, offset)).  Eviction is strictly least-recently-used and bounded
by a byte budget rather than an entry count, matching the paper's "cache
size 2 GB" setup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """LRU cache bounded by the sum of entry sizes in bytes."""

    def __init__(
        self,
        capacity_bytes: int,
        size_of: Callable[[V], int] = lambda value: 1,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes cannot be negative")
        self._capacity = capacity_bytes
        self._size_of = size_of
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._sizes: dict[K, int] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def get(self, key: K) -> Optional[V]:
        """Return the cached value and mark it most recently used."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def peek(self, key: K) -> Optional[V]:
        """Read without updating recency or hit statistics."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert/replace a value; evicts LRU entries to fit the budget.

        A value larger than the whole cache is simply not cached.
        """
        size = self._size_of(value)
        if size > self._capacity:
            self.pop(key)
            return
        if key in self._entries:
            self._used -= self._sizes[key]
            del self._entries[key]
            del self._sizes[key]
        while self._used + size > self._capacity and self._entries:
            old_key, _ = self._entries.popitem(last=False)
            self._used -= self._sizes.pop(old_key)
            self.evictions += 1
        self._entries[key] = value
        self._sizes[key] = size
        self._used += size

    def pop(self, key: K) -> Optional[V]:
        """Remove and return a value, or ``None`` if absent."""
        if key not in self._entries:
            return None
        value = self._entries.pop(key)
        self._used -= self._sizes.pop(key)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self._used = 0

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
