"""Shared utilities: errors, config, codec, hashing, caching, clock."""

from .clock import Clock, WallClock
from .codec import Reader, Writer
from .config import SebdbConfig
from .errors import (
    AccessDenied,
    CatalogError,
    CodecError,
    ConfigError,
    ConsensusError,
    ContractError,
    IndexError_,
    NetworkError,
    ParseError,
    QueryError,
    SchemaError,
    SebdbError,
    SignatureError,
    StorageError,
    VerificationError,
)
from .hashing import (
    DIGEST_SIZE,
    hash_children,
    hash_concat,
    hash_leaf,
    hex_digest,
    sha256,
)
from .lru import LRUCache

__all__ = [
    "AccessDenied",
    "CatalogError",
    "Clock",
    "CodecError",
    "ConfigError",
    "ConsensusError",
    "ContractError",
    "DIGEST_SIZE",
    "IndexError_",
    "LRUCache",
    "NetworkError",
    "ParseError",
    "QueryError",
    "Reader",
    "SchemaError",
    "SebdbConfig",
    "SebdbError",
    "SignatureError",
    "StorageError",
    "VerificationError",
    "WallClock",
    "Writer",
    "hash_children",
    "hash_concat",
    "hash_leaf",
    "hex_digest",
    "sha256",
]
