"""Simulated clock.

The consensus and network layers run on a discrete-event simulated clock so
that experiments are deterministic and orders of magnitude faster than real
time.  Everything that needs "now" takes a :class:`Clock`; production-style
use can pass :class:`WallClock` instead.
"""

from __future__ import annotations

import itertools
import time


class Clock:
    """Manually-advanced simulated clock (milliseconds)."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._seq = itertools.count()

    def now_ms(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += delta_ms

    def next_seq(self) -> int:
        """Monotone sequence number for tie-breaking simultaneous events."""
        return next(self._seq)


class WallClock(Clock):
    """Clock backed by the real time.monotonic()."""

    def __init__(self) -> None:
        super().__init__()
        self._t0 = time.monotonic()

    def now_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def advance(self, delta_ms: float) -> None:
        # Real time cannot be advanced; sleeping would slow tests down,
        # so advancing a wall clock is a no-op by design.
        return None
