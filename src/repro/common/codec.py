"""Binary codec for on-chain structures.

Transactions and blocks are serialized to a compact, deterministic binary
format: deterministic so that hashes and signatures are stable across
nodes, compact because the block store appends raw bytes to segment files.

Wire format primitives
----------------------
* varint        - unsigned LEB128
* bytes         - varint length prefix + raw bytes
* str           - UTF-8 via the bytes encoding
* int (signed)  - zig-zag then varint
* float         - 8-byte IEEE-754 big endian
* value         - 1 type tag byte + payload (supports None, bool, int,
                  float, str, bytes)
"""

from __future__ import annotations

import struct
from typing import Any

from .errors import CodecError

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6


class Writer:
    """Append-only binary writer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def write_raw(self, data: bytes) -> None:
        self._parts.append(data)

    def write_varint(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"varint cannot encode negative value {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))

    def write_signed(self, value: int) -> None:
        # zig-zag encoding maps signed ints onto unsigned ones:
        # 0, -1, 1, -2, 2 ... -> 0, 1, 2, 3, 4 ...
        self.write_varint(2 * value if value >= 0 else -2 * value - 1)

    def write_bytes(self, data: bytes) -> None:
        self.write_varint(len(data))
        self._parts.append(data)

    def write_str(self, text: str) -> None:
        self.write_bytes(text.encode("utf-8"))

    def write_float(self, value: float) -> None:
        self._parts.append(struct.pack(">d", value))

    def write_value(self, value: Any) -> None:
        """Write a tagged dynamic value (a tuple attribute)."""
        if value is None:
            self._parts.append(bytes([_TAG_NONE]))
        elif value is False:
            self._parts.append(bytes([_TAG_FALSE]))
        elif value is True:
            self._parts.append(bytes([_TAG_TRUE]))
        elif isinstance(value, int):
            self._parts.append(bytes([_TAG_INT]))
            self.write_signed(value)
        elif isinstance(value, float):
            self._parts.append(bytes([_TAG_FLOAT]))
            self.write_float(value)
        elif isinstance(value, str):
            self._parts.append(bytes([_TAG_STR]))
            self.write_str(value)
        elif isinstance(value, (bytes, bytearray)):
            self._parts.append(bytes([_TAG_BYTES]))
            self.write_bytes(bytes(value))
        else:
            raise CodecError(f"unsupported value type: {type(value).__name__}")

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Sequential binary reader over a bytes buffer."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read_raw(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CodecError(
                f"buffer underflow: need {n} bytes at {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n  # sebdb: allow[concurrency] cursor on a Reader each decoder constructs locally; instances are never shared across workers
        return out

    def read_varint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise CodecError("buffer underflow while reading varint")
            byte = self._data[self._pos]
            self._pos += 1  # sebdb: allow[concurrency] cursor on a Reader each decoder constructs locally; instances are never shared across workers
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            # Python ints are unbounded; the cap only guards against a
            # maliciously endless continuation-bit stream
            if shift > 1024:
                raise CodecError("varint too long")

    def read_signed(self) -> int:
        raw = self.read_varint()
        return (raw >> 1) ^ -(raw & 1)

    def read_bytes(self) -> bytes:
        length = self.read_varint()
        return self.read_raw(length)

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 string: {exc}") from exc

    def read_float(self) -> float:
        return struct.unpack(">d", self.read_raw(8))[0]

    def read_value(self) -> Any:
        tag = self.read_raw(1)[0]
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_INT:
            return self.read_signed()
        if tag == _TAG_FLOAT:
            return self.read_float()
        if tag == _TAG_STR:
            return self.read_str()
        if tag == _TAG_BYTES:
            return self.read_bytes()
        raise CodecError(f"unknown value tag {tag}")
