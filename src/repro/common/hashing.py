"""Hashing helpers.

SEBDB uses SHA-256 everywhere (block hashes, Merkle trees, MB-tree digests,
thin-client digests).  These helpers centralize domain separation so that a
leaf hash can never be confused with an interior-node hash - a standard
defence against second-preimage attacks on Merkle trees.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def hash_leaf(data: bytes) -> bytes:
    """Domain-separated hash of a Merkle-tree leaf."""
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def hash_children(left: bytes, right: bytes) -> bytes:
    """Domain-separated hash of two Merkle-tree children."""
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


#: Root of an empty Merkle tree - hash of the empty string leaf, fixed constant.
EMPTY_MERKLE_ROOT = hash_leaf(b"")


def merkle_root_from_leaves(leaves: Sequence[bytes]) -> bytes:
    """Root hash over pre-hashed ``leaves``; O(n) time, O(n) space.

    Lives here (not in ``mht``) because sealing a block - a ``model``
    layer operation - needs the root without the tree: ``model`` sits
    below ``mht`` in the layer DAG, and the proof-producing structures
    in ``mht`` build on this primitive instead.  An odd node at any
    level is promoted unchanged (Bitcoin-style duplication would allow
    a known mutation vector, promotion does not).
    """
    if not leaves:
        return EMPTY_MERKLE_ROOT
    level = list(leaves)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(hash_children(level[i], level[i + 1]))
        if len(level) & 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def hash_concat(parts: Iterable[bytes]) -> bytes:
    """Hash the concatenation of ``parts``.

    Used by auxiliary full nodes to digest the MB-tree roots a query
    visits (section VI of the paper).
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def hex_digest(data: bytes) -> str:
    """Hex rendering used in logs and examples."""
    return data.hex()
