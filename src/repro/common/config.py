"""Global configuration for a SEBDB deployment.

The paper's defaults are: 256 MB segment files, 4 MB blocks, 300-byte
transactions, 4 KB MB-tree pages, SHA-256 digests.  All of these are
configurable; the benchmark harness uses scaled-down values so every figure
regenerates in seconds while preserving relative shapes.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from .errors import ConfigError

#: Paper defaults (section VII, "Important parameter settings").
DEFAULT_SEGMENT_FILE_SIZE = 256 * 1024 * 1024
DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024
DEFAULT_PAGE_SIZE = 4 * 1024
DEFAULT_TX_SIZE = 300


@dataclasses.dataclass
class SebdbConfig:
    """Tunable knobs for one SEBDB node.

    Parameters
    ----------
    data_dir:
        Directory holding segment files, index files and the off-chain
        sqlite database.  ``None`` selects fully in-memory operation.
    segment_file_size:
        Maximum bytes per append-only segment file (paper default 256 MB).
    block_size_bytes:
        Target packaged-block size in bytes (paper default 4 MB).
    block_size_txs:
        Maximum transactions per block; packaging closes a block when
        either limit is hit (the Fig 7 Kafka setup uses 200 txs).
    package_timeout_ms:
        Packaging timeout: a non-empty block is sealed after this many
        simulated milliseconds even if not full (Fig 7 uses 200 ms).
    mbtree_page_size:
        Page size (bytes) for Merkle B-tree nodes (paper default 4 KB).
    bptree_order:
        Fan-out of all B+-trees.
    histogram_depth:
        Number of buckets in the equal-depth histogram backing layered
        indexes on continuous attributes (Fig 11 uses 100).
    cache_bytes:
        Capacity of the block/transaction cache in bytes.
    cache_mode:
        ``"block"`` caches whole recently-read blocks, ``"transaction"``
        caches individual recently-read tuples (Fig 22 compares the two),
        ``"none"`` disables caching.
    pipeline_workers:
        Worker threads for the ledger pipeline's validate and apply
        stages; 1 (the default) runs every stage inline with no pool.
        Any value produces byte-identical blocks and state.
    num_shards:
        Number of independent ledger shards.  1 (the default) keeps the
        single-chain topology; ``N > 1`` partitions tables across N
        pipelines, each with its own orderer and segment store (see
        ``repro.shard``).
    shard_placement:
        Optional per-table placement overrides.  A table mapped to an
        ``int`` is pinned to that shard; a table mapped to a sorted
        tuple of split points is range-partitioned on its leading key
        (bucket ``bisect(splits, key)``, shard ``bucket % num_shards``).
        Tables not listed hash on their name.
    """

    data_dir: Path | None = None
    segment_file_size: int = DEFAULT_SEGMENT_FILE_SIZE
    block_size_bytes: int = DEFAULT_BLOCK_SIZE
    block_size_txs: int = 1000
    package_timeout_ms: int = 200
    mbtree_page_size: int = DEFAULT_PAGE_SIZE
    bptree_order: int = 32
    histogram_depth: int = 100
    cache_bytes: int = 64 * 1024 * 1024
    cache_mode: str = "transaction"
    pipeline_workers: int = 1
    num_shards: int = 1
    shard_placement: dict[str, int | tuple] | None = None

    def __post_init__(self) -> None:
        if self.segment_file_size <= 0:
            raise ConfigError("segment_file_size must be positive")
        if self.block_size_bytes <= 0:
            raise ConfigError("block_size_bytes must be positive")
        if self.block_size_txs <= 0:
            raise ConfigError("block_size_txs must be positive")
        if self.package_timeout_ms < 0:
            raise ConfigError("package_timeout_ms cannot be negative")
        if self.bptree_order < 3:
            raise ConfigError("bptree_order must be at least 3")
        if self.histogram_depth < 1:
            raise ConfigError("histogram_depth must be at least 1")
        if self.pipeline_workers < 1:
            raise ConfigError("pipeline_workers must be at least 1")
        if self.num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        if self.shard_placement is not None:
            for table, policy in self.shard_placement.items():
                if isinstance(policy, int):
                    if not 0 <= policy < self.num_shards:
                        raise ConfigError(
                            f"shard_placement pins {table!r} to shard "
                            f"{policy}, outside 0..{self.num_shards - 1}"
                        )
                elif isinstance(policy, tuple):
                    try:
                        ordered = list(policy) == sorted(policy)
                    except TypeError:
                        ordered = False
                    if not ordered:
                        raise ConfigError(
                            f"shard_placement range splits for {table!r} "
                            f"must be a sorted tuple of comparable values"
                        )
                else:
                    raise ConfigError(
                        f"shard_placement for {table!r} must be an int "
                        f"(pinned shard) or a sorted tuple of split points"
                    )
        if self.cache_mode not in ("block", "transaction", "none"):
            raise ConfigError(
                f"cache_mode must be 'block', 'transaction' or 'none', "
                f"got {self.cache_mode!r}"
            )
        if self.data_dir is not None:
            self.data_dir = Path(self.data_dir)

    @classmethod
    def in_memory(cls, **overrides: object) -> "SebdbConfig":
        """A small, fast configuration for tests and examples."""
        defaults: dict = dict(
            data_dir=None,
            segment_file_size=4 * 1024 * 1024,
            block_size_bytes=64 * 1024,
            block_size_txs=100,
            bptree_order=16,
            histogram_depth=16,
            cache_bytes=4 * 1024 * 1024,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]
