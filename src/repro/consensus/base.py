"""Pluggable consensus (section III-B: "SEBDB uses plug-in pattern").

A consensus engine totally orders client transactions into *batches* and
delivers every batch, exactly once and in the same order, to every
registered replica.  The SEBDB node turns each delivered batch into a
block (assigning global tids deterministically) and appends it to its
local chain - so identical delivery order means identical chains.

Engines run on the simulated :class:`~repro.network.bus.MessageBus`;
drive them with ``bus.run_until_idle()`` (or ``run_for`` when measuring
throughput over a window).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, Optional, Sequence

from ..model.transaction import Transaction

#: Called on every replica for every committed batch, in commit order.
CommitCallback = Callable[[Sequence[Transaction]], None]

#: Called once per submitted transaction when its batch commits;
#: receives the simulated commit timestamp (ms).
ReplyCallback = Callable[[float], None]


@dataclasses.dataclass
class ConsensusStats:
    """Counters every engine maintains (Fig 7's raw material)."""

    submitted: int = 0
    committed: int = 0
    batches: int = 0
    messages: int = 0
    #: retried submissions collapsed by nonce instead of double-committing
    deduplicated: int = 0

    def reset(self) -> None:
        self.submitted = 0
        self.committed = 0
        self.batches = 0
        self.messages = 0
        self.deduplicated = 0


class SubmissionLedger:
    """Nonce-keyed dedup and re-ack state shared by every engine.

    Consensus must commit a retried submission *at most once* while still
    acknowledging every copy of the request, otherwise a client whose ack
    was lost retries forever.  The ledger tracks each nonce-carrying
    transaction through three states:

    * unknown  -> ``admit`` returns True: order it, remember callbacks;
    * pending  -> ``admit`` returns False: swallow the duplicate, queue
      its callback next to the original's;
    * committed -> ``admit`` returns False and ``replay_ack`` supplies
      the recorded commit time so the retry is acked immediately.

    Transactions without a nonce bypass the ledger entirely (``admit``
    always True), preserving fire-and-forget semantics.
    """

    def __init__(self) -> None:
        self._pending: dict[tuple[str, str], list[ReplyCallback]] = {}
        self._committed: dict[tuple[str, str], float] = {}

    def admit(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> bool:
        """True when ``tx`` is new and must be ordered; False on a retry."""
        key = tx.dedup_key()
        if key is None:
            return True
        if key in self._committed:
            return False
        if key in self._pending:
            if on_reply is not None:
                self._pending[key].append(on_reply)
            return False
        self._pending[key] = [] if on_reply is None else [on_reply]
        return True

    def replay_ack(self, tx: Transaction) -> Optional[float]:
        """Commit time to re-ack a retry of an already-committed tx."""
        key = tx.dedup_key()
        if key is None:
            return None
        return self._committed.get(key)

    def commit(self, tx: Transaction, commit_ms: float) -> list[ReplyCallback]:
        """Mark committed; returns every callback waiting on this nonce."""
        key = tx.dedup_key()
        if key is None:
            return []
        self._committed[key] = commit_ms
        return self._pending.pop(key, [])

    def abandon(self, tx: Transaction) -> list[ReplyCallback]:
        """Give up on a pending transaction (engine abandoned its height).

        Returns the orphaned callbacks; the nonce becomes unknown again so
        a later retry is re-admitted and re-ordered from scratch.
        """
        key = tx.dedup_key()
        if key is None or key in self._committed:
            return []
        return self._pending.pop(key, [])

    def is_committed(self, tx: Transaction) -> bool:
        key = tx.dedup_key()
        return key is not None and key in self._committed

    def __len__(self) -> int:
        return len(self._pending) + len(self._committed)


class ConsensusEngine(abc.ABC):
    """Interface every pluggable consensus component implements."""

    def __init__(self) -> None:
        self.stats = ConsensusStats()
        self._replicas: dict[str, CommitCallback] = {}

    def register_replica(self, replica_id: str, on_commit: CommitCallback) -> None:
        """Attach a replica; it will receive every committed batch."""
        self._replicas[replica_id] = on_commit

    def unregister_replica(self, replica_id: str) -> None:
        """Detach a replica (crashed node); it stops receiving batches."""
        self._replicas.pop(replica_id, None)

    @property
    def replica_ids(self) -> list[str]:
        return sorted(self._replicas)

    @abc.abstractmethod
    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Submit a client transaction for ordering."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Force any pending partial batch to be proposed (test hook)."""

    def _deliver(self, batch: Sequence[Transaction]) -> None:
        """Deliver a committed batch to every replica (same order)."""
        self.stats.batches += 1
        self.stats.committed += len(batch)
        for replica_id in self.replica_ids:
            self._replicas[replica_id](batch)


class BatchBuffer:
    """Accumulates transactions until a size or timeout boundary.

    The Fig 7 setup: "block size is set to 200 transactions and timeout
    for packaging is set to 200 ms".  The owner polls :meth:`take_full`
    on each append and arms a timer that calls :meth:`take_all` when it
    fires on a non-empty buffer.
    """

    def __init__(self, max_txs: int) -> None:
        if max_txs <= 0:
            raise ValueError("max_txs must be positive")
        self._max = max_txs
        self._buffer: list[tuple[Transaction, Optional[ReplyCallback]]] = []
        #: increases every time the buffer is emptied; timers compare epochs
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> None:
        self._buffer.append((tx, on_reply))

    def take_full(self) -> Optional[list[tuple[Transaction, Optional[ReplyCallback]]]]:
        """A full batch if one is ready, else None."""
        if len(self._buffer) < self._max:
            return None
        batch = self._buffer[: self._max]
        self._buffer = self._buffer[self._max :]
        self.epoch += 1
        return batch

    def take_all(self) -> list[tuple[Transaction, Optional[ReplyCallback]]]:
        """Everything buffered (timeout path); may be empty."""
        batch = self._buffer
        self._buffer = []
        if batch:
            self.epoch += 1
        return batch
