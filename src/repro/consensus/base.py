"""Pluggable consensus (section III-B: "SEBDB uses plug-in pattern").

A consensus engine totally orders client transactions into *batches* and
delivers every batch, exactly once and in the same order, to every
registered replica.  The SEBDB node turns each delivered batch into a
block (assigning global tids deterministically) and appends it to its
local chain - so identical delivery order means identical chains.

Engines run on the simulated :class:`~repro.network.bus.MessageBus`;
drive them with ``bus.run_until_idle()`` (or ``run_for`` when measuring
throughput over a window).
"""

from __future__ import annotations

import abc
import dataclasses
import weakref
from typing import Any, Callable, Optional, Sequence

from ..common.errors import ConfigError
from ..model.transaction import Transaction
from ..network.bus import MessageBus

#: Called on every replica for every committed batch, in commit order.
CommitCallback = Callable[[Sequence[Transaction]], None]

#: Called once per submitted transaction when its batch commits;
#: receives the simulated commit timestamp (ms).
ReplyCallback = Callable[[float], None]

#: Called when the engine certifies a checkpoint (PBFT stable checkpoint).
CheckpointCallback = Callable[["Checkpoint"], None]

#: :meth:`ConsensusEngine.admit_submission` outcomes
ADMIT_NEW = "new"          #: first sight of this nonce - order it
ADMIT_REPLAYED = "replayed"  #: already committed - the re-ack was sent
ADMIT_PENDING = "pending"    #: a copy is already in flight - swallowed


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """A quorum-certified snapshot of the ordered prefix.

    ``seq`` is the last sequence the checkpoint covers, ``digest`` the
    running execution digest up to and including that sequence, and
    ``votes`` the replicas whose matching CHECKPOINT messages form the
    2f+1 proof.  A replica holding a checkpoint certificate can hand it
    to a lagging peer, which jumps its protocol state to ``seq`` without
    re-running the three-phase protocol for the covered sequences.
    """

    seq: int
    digest: bytes
    votes: tuple[str, ...]


@dataclasses.dataclass
class ConsensusStats:
    """Counters every engine maintains (Fig 7's raw material)."""

    submitted: int = 0
    committed: int = 0
    batches: int = 0
    messages: int = 0
    #: retried submissions collapsed by nonce instead of double-committing
    deduplicated: int = 0
    #: views installed across the cluster (PBFT; one count per new view)
    view_changes: int = 0
    #: checkpoints that reached a 2f+1 quorum (one count per sequence)
    checkpoints: int = 0
    #: state transfers completed by lagging replicas
    state_transfers: int = 0
    #: state transfers whose payloads were bulk-fetched off the gossip
    #: mesh instead of shipped inline (certificate-plus-manifest path)
    bulk_transfers: int = 0
    #: broker-cluster leader elections won (one count per new leader)
    elections: int = 0
    #: submissions that reached a non-leader broker and were redirected
    redirects: int = 0

    def reset(self) -> None:
        self.submitted = 0
        self.committed = 0
        self.batches = 0
        self.messages = 0
        self.deduplicated = 0
        self.view_changes = 0
        self.checkpoints = 0
        self.state_transfers = 0
        self.bulk_transfers = 0
        self.elections = 0
        self.redirects = 0


class AckChannel:
    """Routes engine acks to client callbacks over the *faultable* bus.

    Engines used to schedule reply callbacks with ``bus.schedule``, which
    no link fault can touch - lost-ack retries were therefore untestable.
    The channel registers one ``client`` endpoint per bus and ships every
    ack as a real message from the acking engine node, so acks traverse
    the same loss/delay/duplication/partition filters as any other
    traffic.  A dropped ack simply never invokes its callback: the
    client's attempt timeout fires, the retry is deduplicated by the
    :class:`SubmissionLedger`, and the re-ack travels the link again.
    """

    KIND = "engine-ack"
    CLIENT_ID = "client"

    _channels: "weakref.WeakKeyDictionary[MessageBus, AckChannel]" = (
        weakref.WeakKeyDictionary()
    )

    def __init__(self, bus: MessageBus, client_id: str = CLIENT_ID) -> None:
        self._bus = bus
        self._client_id = client_id
        self._callbacks: dict[int, ReplyCallback] = {}
        self._next_token = 0
        bus.register(client_id, self._on_message)

    @classmethod
    def for_bus(cls, bus: MessageBus) -> "AckChannel":
        """The shared per-bus channel (engines on one bus share ``client``)."""
        channel = cls._channels.get(bus)
        if channel is None:
            channel = cls(bus)
            cls._channels[bus] = channel
        return channel

    def deliver(
        self,
        src: str,
        callback: ReplyCallback,
        commit_ms: float,
        delay_ms: float,
    ) -> None:
        """Send one ack from engine node ``src`` over the lossy link."""
        token = self._next_token
        self._next_token += 1
        self._callbacks[token] = callback
        self._bus.send(
            src, self._client_id,
            {"kind": self.KIND, "token": token, "commit_ms": commit_ms},
            delay_ms=delay_ms,
        )

    def _on_message(self, src: str, message: Any) -> None:
        if not isinstance(message, dict) or message.get("kind") != self.KIND:
            return  # gossip/heartbeat traffic addressed at the client id
        callback = self._callbacks.pop(message["token"], None)
        if callback is not None:
            # a duplicated ack pops nothing the second time - idempotent
            callback(message["commit_ms"])


class SubmissionLedger:
    """Nonce-keyed dedup and re-ack state shared by every engine.

    Consensus must commit a retried submission *at most once* while still
    acknowledging every copy of the request, otherwise a client whose ack
    was lost retries forever.  The ledger tracks each nonce-carrying
    transaction through three states:

    * unknown  -> ``admit`` returns True: order it, remember callbacks;
    * pending  -> ``admit`` returns False: swallow the duplicate, queue
      its callback next to the original's;
    * committed -> ``admit`` returns False and ``replay_ack`` supplies
      the recorded commit time so the retry is acked immediately.

    Transactions without a nonce bypass the ledger entirely (``admit``
    always True), preserving fire-and-forget semantics.
    """

    def __init__(self) -> None:
        self._pending: dict[tuple[str, str], list[ReplyCallback]] = {}
        self._committed: dict[tuple[str, str], float] = {}

    def admit(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> bool:
        """True when ``tx`` is new and must be ordered; False on a retry."""
        key = tx.dedup_key()
        if key is None:
            return True
        if key in self._committed:
            return False
        if key in self._pending:
            if on_reply is not None:
                self._pending[key].append(on_reply)
            return False
        self._pending[key] = [] if on_reply is None else [on_reply]
        return True

    def replay_ack(self, tx: Transaction) -> Optional[float]:
        """Commit time to re-ack a retry of an already-committed tx."""
        key = tx.dedup_key()
        if key is None:
            return None
        return self._committed.get(key)

    def commit(self, tx: Transaction, commit_ms: float) -> list[ReplyCallback]:
        """Mark committed; returns every callback waiting on this nonce."""
        key = tx.dedup_key()
        if key is None:
            return []
        self._committed[key] = commit_ms
        return self._pending.pop(key, [])

    def abandon(self, tx: Transaction) -> list[ReplyCallback]:
        """Give up on a pending transaction (engine abandoned its height).

        Returns the orphaned callbacks; the nonce becomes unknown again so
        a later retry is re-admitted and re-ordered from scratch.
        """
        key = tx.dedup_key()
        if key is None or key in self._committed:
            return []
        return self._pending.pop(key, [])

    def is_committed(self, tx: Transaction) -> bool:
        key = tx.dedup_key()
        return key is not None and key in self._committed

    def __len__(self) -> int:
        return len(self._pending) + len(self._committed)


class ConsensusEngine(abc.ABC):
    """Interface every pluggable consensus component implements."""

    def __init__(self) -> None:
        self.stats = ConsensusStats()
        self._replicas: dict[str, CommitCallback] = {}
        self._checkpoint_listeners: dict[str, CheckpointCallback] = {}
        #: set by :meth:`init_client_plumbing`
        self.ledger: SubmissionLedger
        self._acks: AckChannel

    def init_client_plumbing(self, bus: MessageBus) -> None:
        """Wire up the client-side state every engine shares: the
        nonce-keyed :class:`SubmissionLedger` and the per-bus faultable
        :class:`AckChannel`."""
        self.ledger = SubmissionLedger()
        self._acks = AckChannel.for_bus(bus)

    def admit_submission(
        self,
        tx: Transaction,
        on_reply: Optional[ReplyCallback],
        ack_source: str,
        ack_delay_ms: float,
    ) -> str:
        """Shared dedup-or-re-ack step every engine runs on a submission.

        Returns :data:`ADMIT_NEW` when ``tx`` must be ordered,
        :data:`ADMIT_REPLAYED` when it already committed (the recorded
        commit time was re-acked from ``ack_source`` over the faultable
        client link), or :data:`ADMIT_PENDING` when a copy is already in
        flight (the callback was queued next to the original's).
        """
        if self.ledger.admit(tx, on_reply):
            return ADMIT_NEW
        self.stats.deduplicated += 1
        replayed = self.ledger.replay_ack(tx)
        if replayed is not None:
            if on_reply is not None:
                self._acks.deliver(ack_source, on_reply, replayed,
                                   ack_delay_ms)
            return ADMIT_REPLAYED
        return ADMIT_PENDING

    def finish_commit(
        self,
        entries: Sequence[tuple[Transaction, Optional[ReplyCallback]]],
        ack_source: str,
        commit_ms: float,
        ack_delay_ms: float,
    ) -> None:
        """Shared commit tail: deliver the batch, then ack every waiter.

        ``entries`` pairs each transaction with its directly-attached
        reply callback (legacy, nonce-less submissions); nonce-carrying
        transactions collect their callbacks from the submission ledger.
        Acks travel from ``ack_source`` over the faultable client link.
        """
        self._deliver([tx for tx, _ in entries])
        for tx, reply in entries:
            callbacks = self.ledger.commit(tx, commit_ms)
            if reply is not None:
                callbacks = callbacks + [reply]
            for callback in callbacks:
                self._acks.deliver(ack_source, callback, commit_ms,
                                   ack_delay_ms)

    def register_replica(self, replica_id: str, on_commit: CommitCallback) -> None:
        """Attach a replica; it will receive every committed batch."""
        self._replicas[replica_id] = on_commit

    def unregister_replica(self, replica_id: str) -> None:
        """Detach a replica (crashed node); it stops receiving batches."""
        self._replicas.pop(replica_id, None)

    def register_checkpoint_listener(
        self, listener_id: str, on_checkpoint: CheckpointCallback
    ) -> None:
        """Be told whenever the engine certifies a checkpoint.

        Full nodes use this to record durable chain checkpoints so crash
        recovery re-verifies only the suffix past the last certified
        prefix instead of the whole chain.  Engines without a checkpoint
        protocol simply never notify.
        """
        self._checkpoint_listeners[listener_id] = on_checkpoint

    def unregister_checkpoint_listener(self, listener_id: str) -> None:
        self._checkpoint_listeners.pop(listener_id, None)

    def _notify_checkpoint(self, checkpoint: Checkpoint) -> None:
        for listener_id in sorted(self._checkpoint_listeners):
            self._checkpoint_listeners[listener_id](checkpoint)

    @property
    def replica_ids(self) -> list[str]:
        return sorted(self._replicas)

    @abc.abstractmethod
    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Submit a client transaction for ordering."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Force any pending partial batch to be proposed (test hook)."""

    def _deliver(self, batch: Sequence[Transaction]) -> None:
        """Deliver a committed batch to every replica (same order)."""
        self.stats.batches += 1
        self.stats.committed += len(batch)
        for replica_id in self.replica_ids:
            self._replicas[replica_id](batch)


class BatchBuffer:
    """Accumulates transactions until a size or timeout boundary.

    The Fig 7 setup: "block size is set to 200 transactions and timeout
    for packaging is set to 200 ms".  The owner polls :meth:`take_full`
    on each append and arms a timer that calls :meth:`take_all` when it
    fires on a non-empty buffer.
    """

    def __init__(self, max_txs: int) -> None:
        if max_txs <= 0:
            raise ConfigError("max_txs must be positive")
        self._max = max_txs
        self._buffer: list[tuple[Transaction, Optional[ReplyCallback]]] = []
        #: increases every time the buffer is emptied; timers compare epochs
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> None:
        self._buffer.append((tx, on_reply))

    def take_full(self) -> Optional[list[tuple[Transaction, Optional[ReplyCallback]]]]:
        """A full batch if one is ready, else None."""
        if len(self._buffer) < self._max:
            return None
        batch = self._buffer[: self._max]
        self._buffer = self._buffer[self._max :]
        self.epoch += 1
        return batch

    def take_all(self) -> list[tuple[Transaction, Optional[ReplyCallback]]]:
        """Everything buffered (timeout path); may be empty."""
        batch = self._buffer
        self._buffer = []
        if batch:
            self.epoch += 1
        return batch
