"""Replicated ordering-broker cluster (leader + in-sync replicas).

The single Kafka broker the paper's Fig 7 pipeline models is a
crash-fault-tolerant *service* in a real deployment: the topic is
replicated across a broker cluster, one broker leads each partition and
the in-sync replica set (ISR) follows.  This module makes that fault
domain real instead of modelled:

* every broker is its own bus endpoint, so chaos schedules can crash,
  partition or degrade any of them individually;
* the leader replicates each cut batch to the followers over faultable
  links and only commits a batch once a majority of the cluster holds
  it (the ISR acknowledgement rule);
* when the leader crashes, a deterministic epoch-based election - seeded
  by submission *notes* the clients fan to every broker, no wall clock -
  fails over to the most-caught-up follower: a vote is only granted to a
  candidate whose log position is at least the voter's, so a majority
  quorum always intersects the committed prefix (Raft's safety rule);
* clients re-resolve the leader through NOT_LEADER/LEADER redirect
  messages delivered to the orderer's client-side endpoint; the existing
  :class:`~repro.client.submitter.ResilientSubmitter` retry loop then
  re-submits to the new leader and the :class:`SubmissionLedger` dedup
  guarantees a batch acked by a deposed leader is never double-ordered
  by its successor.

With ``num_brokers=1`` the cluster degenerates to the original
single-broker pipeline byte-for-byte: no notes, no elections, no
replication traffic, and the same serial-packager timing model.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import TYPE_CHECKING, Any, Optional

from ..common.errors import ConfigError, ConsensusError
from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import ADMIT_NEW, ReplyCallback

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kafka import KafkaOrderer

#: bus node id of broker 0 (and the whole service when ``num_brokers=1``)
BROKER_ID = "kafka-broker"

#: client-side endpoint of the orderer facade; brokers send leader
#: redirects here so the next submission goes to the right broker
ORDERER_ID = "kafka-orderer"

#: message kinds
SUBMIT = "kafka-submit"
NOTE = "kafka-note"
APPEND = "kafka-append"
APPEND_ACK = "kafka-append-ack"
FETCH = "kafka-fetch"
VOTE_REQ = "kafka-vote-req"
VOTE = "kafka-vote"
LEADER = "kafka-leader"
NOT_LEADER = "kafka-not-leader"
JOIN = "kafka-join"


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One replicated batch: the epoch it was cut in plus its payload.

    ``batch`` holds ``(tx, reply, note_id)`` triples; the note id ties the
    entry back to the client fan-out notes so a successor leader can tell
    which noted submissions are already in the pipeline.
    """

    epoch: int
    batch: tuple

    def digest(self) -> str:
        h = hashlib.sha256()
        for tx, _reply, _note in self.batch:
            h.update(tx.signing_payload())
        return h.hexdigest()[:16]

    def same_as(self, other: "LogEntry") -> bool:
        return self is other or (
            self.epoch == other.epoch and self.digest() == other.digest()
        )


class BrokerCluster:
    """Shared state of the broker cluster plus its member brokers.

    Cluster-level members model what a real deployment keeps *durable and
    replicated* outside any single broker process: the client-visible
    topic buffer, the note bookkeeping and the committed-batch watermark.
    Everything protocol-visible (logs, epochs, votes, leadership) lives
    per-broker and travels over the faultable bus.
    """

    def __init__(
        self,
        engine: "KafkaOrderer",
        bus: MessageBus,
        num_brokers: int,
        batch_txs: int,
        timeout_ms: float,
        submit_latency_ms: float,
        per_tx_cost_ms: float,
        per_block_cost_ms: float,
        deliver_latency_ms: float,
        broker_id: str,
        election_timeout_ms: float,
        max_election_attempts: int,
    ) -> None:
        if num_brokers < 1:
            raise ConfigError("num_brokers must be positive")
        if batch_txs <= 0:
            raise ConfigError("batch_txs must be positive")
        if election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be positive")
        self.engine = engine
        self.bus = bus
        self.num_brokers = num_brokers
        self.batch_max = batch_txs
        self.timeout_ms = timeout_ms
        self.link_latency = submit_latency_ms
        self.per_tx = per_tx_cost_ms
        self.per_block = per_block_cost_ms
        self.deliver_latency = deliver_latency_ms
        self.election_timeout = election_timeout_ms
        self.max_election_attempts = max_election_attempts
        self.broker_ids = [broker_id] + [
            f"{broker_id}-{i}" for i in range(1, num_brokers)
        ]
        self.majority = num_brokers // 2 + 1
        #: committed-batch watermark: batches 0..delivered-1 are final
        self.delivered = 0
        #: audit trail for the invariant checker: (seq, epoch, digest)
        self.delivery_log: list[tuple[int, int, str]] = []
        #: note ids of submissions admitted into the pipeline by a leader
        self.seen_notes: set[int] = set()
        #: note ids whose batch committed (resolves follower suspicion)
        self.committed_notes: set[int] = set()
        self._note_seq = 0
        #: the shared topic buffer (survives leader failover, like the
        #: replicated topic partition it models)
        self._batch: list[tuple[Transaction, Optional[ReplyCallback], Optional[int]]] = []
        self.batch_epoch = 0
        self.brokers = [
            BrokerNode(self, index, node_id)
            for index, node_id in enumerate(self.broker_ids)
        ]

    # -- topic buffer -----------------------------------------------------------

    def next_note(self) -> int:
        self._note_seq += 1
        return self._note_seq

    @property
    def batch_len(self) -> int:
        return len(self._batch)

    def batch_items(self) -> list[tuple[Transaction, Optional[ReplyCallback], Optional[int]]]:
        return list(self._batch)

    def buffer_append(
        self,
        tx: Transaction,
        reply: Optional[ReplyCallback],
        note_id: Optional[int],
    ) -> None:
        self._batch.append((tx, reply, note_id))

    def take_full(self) -> Optional[list]:
        if len(self._batch) < self.batch_max:
            return None
        batch = self._batch[: self.batch_max]
        self._batch = self._batch[self.batch_max:]
        self.batch_epoch += 1
        return batch

    def take_all(self) -> list:
        batch, self._batch = self._batch, []
        if batch:
            self.batch_epoch += 1
        return batch

    # -- commit -------------------------------------------------------------------

    def deliver(self, seq: int, entry: LogEntry, leader_id: str) -> None:
        """Commit batch ``seq``; idempotent across leader changes.

        A deposed leader's late packager completion and its successor's
        re-commit race to this method; the watermark guarantees each
        sequence is delivered exactly once, in order.
        """
        if seq != self.delivered:
            return
        self.delivered += 1
        self.delivery_log.append((seq, entry.epoch, entry.digest()))
        for _tx, _reply, note_id in entry.batch:
            if note_id is not None:
                self.committed_notes.add(note_id)
        engine = self.engine
        engine.stats.messages += len(engine.replica_ids)
        commit_ms = self.bus.clock.now_ms() + self.deliver_latency
        engine.finish_commit(
            [(tx, reply) for tx, reply, _note in entry.batch],
            leader_id, commit_ms, self.deliver_latency,
        )

    # -- membership ------------------------------------------------------------

    def broker(self, node_id: str) -> "BrokerNode":
        for member in self.brokers:
            if member.node_id == node_id:
                return member
        raise ConsensusError(f"unknown broker {node_id!r}")

    def acting_leader(self) -> Optional["BrokerNode"]:
        """The live broker claiming leadership at the highest epoch."""
        best: Optional[BrokerNode] = None
        for member in self.brokers:
            if member.crashed or not member.is_leader:
                continue
            if best is None or member.epoch > best.epoch:
                best = member
        return best

    def crash_broker(self, node_id: str) -> None:
        member = self.broker(node_id)
        member.crashed = True
        self.bus.fail(node_id)

    def restart_broker(self, node_id: str) -> None:
        member = self.broker(node_id)
        if not member.crashed:
            return
        self.bus.heal(node_id)
        member.rejoin()

    def flush(self) -> None:
        """Cut any partial batch and nudge replication (test hook)."""
        leader = self.acting_leader()
        if leader is None:
            return
        leader.flush_leader()


class BrokerNode:
    """One broker process: log, epoch, vote and leadership state."""

    def __init__(self, cluster: BrokerCluster, index: int, node_id: str) -> None:
        self.cluster = cluster
        self.index = index
        self.node_id = node_id
        self.crashed = False
        self.epoch = 0
        #: everyone starts following broker 0, mirroring the old topology
        self.leader: Optional[str] = cluster.broker_ids[0]
        self.log: list[LogEntry] = []
        #: (epoch, candidate) of the most recent vote granted
        self._voted: tuple[int, Optional[str]] = (0, None)
        self._votes: set[str] = set()
        self._candidate_epoch = -1
        #: follower -> highest log length acknowledged (leader only)
        self._acks: dict[str, int] = {}
        #: next log index to push through the packager (leader only)
        self._sched = 0
        #: simulated time until which the serial packager thread is busy
        self._busy_until = 0.0
        #: noted submissions awaiting commit: note_id -> (tx, reply, seen_ms)
        self._notes: dict[int, tuple[Transaction, Optional[ReplyCallback], float]] = {}
        self._note_timer_armed = False
        self._attempts = 0
        self._cooldown = 0.0
        self._leader_since = 0.0
        self._last_seen_delivered = 0
        cluster.bus.register(node_id, self._on_message)

    # -- helpers ----------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.leader == self.node_id

    def _peers(self) -> list[str]:
        return [b for b in self.cluster.broker_ids if b != self.node_id]

    def _now(self) -> float:
        return self.cluster.bus.clock.now_ms()

    def _send(self, dst: str, message: dict, fifo: bool = False) -> None:
        self.cluster.engine.stats.messages += 1
        self.cluster.bus.send(
            self.node_id, dst, message,
            delay_ms=self.cluster.link_latency, fifo=fifo,
        )

    def _log_position(self) -> tuple[int, int]:
        last_epoch = self.log[-1].epoch if self.log else 0
        return (last_epoch, len(self.log))

    # -- dispatch -----------------------------------------------------------------

    def _on_message(self, src: str, message: Any) -> None:
        if self.crashed or not isinstance(message, dict):
            return
        kind = message.get("kind")
        if kind == SUBMIT:
            self._on_submit(src, message)
        elif kind == NOTE:
            self._on_note(src, message)
        elif kind == APPEND:
            self._on_append(src, message)
        elif kind == APPEND_ACK:
            self._on_append_ack(src, message)
        elif kind == FETCH:
            self._on_fetch(src, message)
        elif kind == VOTE_REQ:
            self._on_vote_req(src, message)
        elif kind == VOTE:
            self._on_vote(src, message)
        elif kind == LEADER:
            self._on_leader(src, message)
        elif kind == JOIN:
            self._on_join(src, message)

    # -- submissions ---------------------------------------------------------------

    def _on_submit(self, src: str, message: dict) -> None:
        tx = message.get("tx")
        if not isinstance(tx, Transaction):
            return
        reply = message.get("on_reply")
        note_id = message.get("note")
        if not isinstance(note_id, int):
            note_id = None
        if self.is_leader:
            self._admit(tx, reply, note_id)
            return
        # wrong broker: remember the submission (it doubles as a note in
        # case the forward is lost), redirect the client, and forward
        self.cluster.engine.stats.redirects += 1
        self._record_note(note_id, tx, reply)
        hops = message.get("fwd", 0)
        if not isinstance(hops, int):
            hops = 0
        if self.leader is not None and hops < self.cluster.num_brokers:
            forwarded = dict(message)
            forwarded["fwd"] = hops + 1
            self._send(self.leader, forwarded, fifo=True)
            self._send(ORDERER_ID, {
                "kind": NOT_LEADER, "epoch": self.epoch, "leader": self.leader,
            })

    def _on_note(self, src: str, message: dict) -> None:
        tx = message.get("tx")
        note_id = message.get("note")
        if not isinstance(tx, Transaction) or not isinstance(note_id, int):
            return
        if self.is_leader:
            # the note beat (or replaced) the SUBMIT copy: admit directly
            self._admit(tx, message.get("on_reply"), note_id)
            return
        self._record_note(note_id, tx, message.get("on_reply"))

    def _record_note(
        self,
        note_id: Optional[int],
        tx: Transaction,
        reply: Optional[ReplyCallback],
    ) -> None:
        if note_id is None or note_id in self.cluster.committed_notes:
            return
        if note_id not in self._notes:
            self._notes[note_id] = (tx, reply, self._now())
        self._arm_note_timer()

    def _admit(
        self,
        tx: Transaction,
        reply: Optional[ReplyCallback],
        note_id: Optional[int],
    ) -> None:
        cluster = self.cluster
        engine = cluster.engine
        if note_id is not None:
            if note_id in cluster.seen_notes:
                return  # another copy of this very submission got here first
            cluster.seen_notes.add(note_id)
        if engine.admit_submission(
            tx, reply, self.node_id, cluster.deliver_latency
        ) != ADMIT_NEW:
            return
        was_empty = cluster.batch_len == 0
        # nonce-carrying txs ack through the ledger; legacy ones keep the
        # callback attached to the buffer entry
        cluster.buffer_append(tx, None if tx.dedup_key() else reply, note_id)
        full = cluster.take_full()
        if full is not None:
            self._cut(full)
        elif was_empty:
            self._arm_cut_timer()

    def _arm_cut_timer(self) -> None:
        epoch = self.cluster.batch_epoch
        self.cluster.bus.schedule(
            self.cluster.timeout_ms, lambda: self._on_cut_timeout(epoch)
        )

    def _on_cut_timeout(self, batch_epoch: int) -> None:
        # only fire if the buffer has not been cut since the timer was
        # armed, and this broker still leads (a successor arms its own)
        if self.crashed or not self.is_leader:
            return
        cluster = self.cluster
        if cluster.batch_epoch == batch_epoch and cluster.batch_len:
            self._cut(cluster.take_all())

    # -- leader: cut, replicate, commit ----------------------------------------

    def _cut(self, batch: list) -> None:
        if not batch:
            return
        self.log.append(LogEntry(epoch=self.epoch, batch=tuple(batch)))
        self._replicate()
        self._maybe_commit()

    def _append_message(
        self, start: int, entries: list, snapshot: bool = False
    ) -> dict:
        """Build an APPEND carrying the Raft-style prev-entry check."""
        message: dict = {
            "kind": APPEND, "epoch": self.epoch,
            "start": start, "entries": list(entries),
        }
        if start > 0:
            prev = self.log[start - 1]
            message["prev"] = (prev.epoch, prev.digest())
        if snapshot:
            message["snapshot"] = True
        return message

    def _replicate(self) -> None:
        """Push the uncommitted log suffix to every follower.

        Re-sending the whole suffix on every cut makes replication
        self-healing under message loss without periodic retry timers
        (which would keep the simulated bus from ever draining).
        """
        cluster = self.cluster
        start = cluster.delivered
        entries = self.log[start:]
        if not entries:
            return
        for peer in self._peers():
            self._send(peer, self._append_message(start, entries))

    def _maybe_commit(self) -> None:
        cluster = self.cluster
        if self._sched < cluster.delivered:
            self._sched = cluster.delivered
        while self._sched < len(self.log):
            seq = self._sched
            votes = 1  # the leader's own copy
            for peer in sorted(self._acks):
                if self._acks[peer] > seq:
                    votes += 1
            if votes < cluster.majority:
                return
            self._schedule_commit(seq)
            self._sched += 1

    def _schedule_commit(self, seq: int) -> None:
        """Queue batch ``seq`` behind the serial packager thread."""
        cluster = self.cluster
        entry = self.log[seq]
        now = self._now()
        work = cluster.per_block + cluster.per_tx * len(entry.batch)
        start = max(now, self._busy_until)
        self._busy_until = start + work
        epoch_at_schedule = self.epoch

        def finish() -> None:
            # a broker that crashed or was deposed mid-packaging must not
            # deliver; its successor re-commits from the watermark
            if (self.crashed or not self.is_leader
                    or self.epoch != epoch_at_schedule):
                return
            cluster.deliver(seq, entry, self.node_id)

        cluster.bus.schedule(self._busy_until - now, finish)

    def _on_append_ack(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        have = message.get("have")
        if not isinstance(epoch, int) or not isinstance(have, int):
            return
        if epoch != self.epoch or not self.is_leader:
            return
        self._acks[src] = max(self._acks.get(src, 0), have)
        self._maybe_commit()

    def _on_fetch(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        have = message.get("have")
        if not isinstance(epoch, int) or not isinstance(have, int):
            return
        if epoch != self.epoch or not self.is_leader or have < 0:
            return
        have = min(have, len(self.log))
        self._send(src, self._append_message(have, self.log[have:]))

    def flush_leader(self) -> None:
        """Cut any partial batch, re-push laggards, re-check quorum."""
        self._cut(self.cluster.take_all())
        lagging = False
        for peer in self._peers():
            if self._acks.get(peer, 0) < len(self.log):
                lagging = True
                break
        if lagging:
            self._replicate()
        self._maybe_commit()

    # -- follower: replication ---------------------------------------------------

    def _on_append(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        start = message.get("start")
        entries = message.get("entries")
        if (not isinstance(epoch, int) or not isinstance(start, int)
                or not isinstance(entries, list)):
            return
        if epoch < self.epoch:
            return  # stale leader; ignoring it denies the old quorum
        self._adopt_leader(epoch, src)
        if start > len(self.log) or start < 0:
            self._send(src, {
                "kind": FETCH, "epoch": epoch, "have": len(self.log),
            })
            return
        prev = message.get("prev")
        if start > 0 and isinstance(prev, tuple):
            ours = self.log[start - 1]
            if (ours.epoch, ours.digest()) != prev:
                # our entry below the leader's suffix is a stale orphan (we
                # cut it as a leader and were deposed before it replicated):
                # walk the fetch point back until the logs agree
                self._send(src, {
                    "kind": FETCH, "epoch": epoch, "have": start - 1,
                })
                return
        for offset, entry in enumerate(entries):
            if not isinstance(entry, LogEntry):
                return
            index = start + offset
            if index >= len(self.log):
                self.log.append(entry)
            elif not self.log[index].same_as(entry):
                # first conflict: everything from here on is superseded
                del self.log[index:]
                self.log.append(entry)
        if message.get("snapshot") is True:
            # a JOIN resync carries the leader's complete log: any local
            # suffix beyond it is an orphan a deposed leader cut but never
            # replicated, superseded even without a direct conflict
            del self.log[start + len(entries):]
        self._send(src, {
            "kind": APPEND_ACK, "epoch": epoch, "have": len(self.log),
        })

    def _adopt_leader(self, epoch: int, leader: str) -> None:
        now = self._now()
        if epoch > self.epoch or self.leader != leader:
            self.epoch = max(self.epoch, epoch)
            self.leader = leader
            self._leader_since = now
            self._attempts = 0
            self._candidate_epoch = -1
        # live leader traffic defers elections
        self._cooldown = max(self._cooldown, now + self.cluster.election_timeout)

    def _on_leader(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        leader = message.get("leader")
        if not isinstance(epoch, int) or not isinstance(leader, str):
            return
        if epoch < self.epoch:
            return
        self._adopt_leader(epoch, leader)

    def _on_join(self, src: str, message: dict) -> None:
        """A restarted broker announced itself; resync it."""
        if self.is_leader:
            self._send(src, {
                "kind": LEADER, "epoch": self.epoch, "leader": self.node_id,
            })
            # full-log resync: the rejoiner may hold stale uncommitted
            # entries below the watermark that only a prefix walk fixes,
            # and the snapshot marker trims any orphan suffix beyond it
            self._send(src, self._append_message(0, self.log, snapshot=True))
        elif self.leader is not None:
            self._send(src, {
                "kind": LEADER, "epoch": self.epoch, "leader": self.leader,
            })

    # -- election ------------------------------------------------------------------

    def _arm_note_timer(self) -> None:
        if (self._note_timer_armed or self.crashed
                or self.cluster.num_brokers == 1):
            return
        self._note_timer_armed = True
        # index stagger: the lowest-indexed live follower campaigns first,
        # so concurrent candidacies (split votes) are the exception
        delay = self.cluster.election_timeout * (1.0 + 0.25 * self.index)
        self.cluster.bus.schedule(delay, self._on_note_timer)

    def _on_note_timer(self) -> None:
        self._note_timer_armed = False
        if self.crashed:
            return
        cluster = self.cluster
        self._prune_notes()
        if cluster.delivered != self._last_seen_delivered:
            # commits are flowing: the leader is alive, start fresh
            self._last_seen_delivered = cluster.delivered
            self._attempts = 0
        if not self._notes or self.is_leader:
            return
        if self._attempts >= cluster.max_election_attempts:
            return  # liveness capped, like PBFT's view-change escalation
        now = self._now()
        oldest = min(seen for _tx, _reply, seen in self._notes.values())
        if (now - oldest >= cluster.election_timeout
                and now >= self._cooldown):
            self._start_election()
        self._arm_note_timer()

    def _prune_notes(self) -> None:
        cluster = self.cluster
        ledger = cluster.engine.ledger
        for note_id in sorted(self._notes):
            tx = self._notes[note_id][0]
            if (note_id in cluster.committed_notes
                    or ledger.is_committed(tx)):
                del self._notes[note_id]

    def _start_election(self) -> None:
        cluster = self.cluster
        self.epoch += 1
        epoch = self.epoch
        self.leader = None
        self._voted = (epoch, self.node_id)
        self._votes = {self.node_id}
        self._candidate_epoch = epoch
        now = self._now()
        # exponential escalation: repeated failures back off, and the
        # per-broker stagger keeps rival candidacies apart
        self._cooldown = now + cluster.election_timeout * (2 ** self._attempts)
        self._attempts += 1
        last_epoch, last_len = self._log_position()
        for peer in self._peers():
            self._send(peer, {
                "kind": VOTE_REQ, "epoch": epoch,
                "last_epoch": last_epoch, "last_len": last_len,
            })
        if len(self._votes) >= cluster.majority:  # pragma: no cover - n==1
            self._become_leader()

    def _on_vote_req(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        last_epoch = message.get("last_epoch")
        last_len = message.get("last_len")
        if (not isinstance(epoch, int) or not isinstance(last_epoch, int)
                or not isinstance(last_len, int)):
            return
        if epoch < self.epoch:
            return
        if epoch > self.epoch:
            self.epoch = epoch
            self.leader = None
            self._candidate_epoch = -1
        voted_epoch, voted_for = self._voted
        if voted_epoch == epoch and voted_for not in (None, src):
            return  # one vote per epoch
        if (last_epoch, last_len) < self._log_position():
            return  # the ISR rule: never elect a less-caught-up broker
        self._voted = (epoch, src)
        self._cooldown = max(
            self._cooldown, self._now() + self.cluster.election_timeout
        )
        self._send(src, {"kind": VOTE, "epoch": epoch, "granted": True})

    def _on_vote(self, src: str, message: dict) -> None:
        epoch = message.get("epoch")
        if not isinstance(epoch, int) or not message.get("granted"):
            return
        if (epoch != self.epoch or self._candidate_epoch != epoch
                or self.leader is not None):
            return
        self._votes.add(src)
        if len(self._votes) >= self.cluster.majority:
            self._become_leader()

    def _become_leader(self) -> None:
        cluster = self.cluster
        self.leader = self.node_id
        self._leader_since = self._now()
        self._acks = {}
        self._sched = cluster.delivered
        cluster.engine.stats.elections += 1
        for peer in self._peers():
            self._send(peer, {
                "kind": LEADER, "epoch": self.epoch, "leader": self.node_id,
            })
        self._send(ORDERER_ID, {
            "kind": LEADER, "epoch": self.epoch, "leader": self.node_id,
        })
        self._repropose_orphans()
        full = cluster.take_full()
        while full is not None:
            self._cut(full)
            full = cluster.take_full()
        if cluster.batch_len:
            self._arm_cut_timer()
        self._replicate()
        self._maybe_commit()

    def _repropose_orphans(self) -> None:
        """Re-admit noted submissions the deposed leader took down with it.

        A submission is orphaned when some leader admitted it (or its
        SUBMIT copy was lost) but the entry holding it never reached this
        broker's log or the shared topic buffer.  Raft's vote rule makes
        re-proposal safe: an entry absent from the new leader's log can
        never gather an old-epoch quorum behind its back.
        """
        cluster = self.cluster
        engine = cluster.engine
        self._prune_notes()
        placed: set[int] = set()
        placed_keys: set = set()
        for entry in self.log:
            for tx, _reply, note_id in entry.batch:
                if note_id is not None:
                    placed.add(note_id)
                key = tx.dedup_key()
                if key is not None:
                    placed_keys.add(key)
        for tx, _reply, note_id in cluster.batch_items():
            if note_id is not None:
                placed.add(note_id)
            key = tx.dedup_key()
            if key is not None:
                placed_keys.add(key)
        for note_id in sorted(self._notes):
            tx, reply, _seen = self._notes[note_id]
            if note_id in placed:
                continue  # already in the pipeline; commits on re-commit
            key = tx.dedup_key()
            if key is not None:
                if key in placed_keys:
                    continue  # a sibling copy of this nonce is in the log
                # reset the nonce so it can be re-ordered, preserving every
                # callback queued against the lost original
                orphaned = engine.ledger.abandon(tx)
                if engine.admit_submission(
                    tx, reply, self.node_id, cluster.deliver_latency
                ) != ADMIT_NEW:
                    continue  # committed in a surviving entry after all
                for callback in orphaned:
                    engine.ledger.admit(tx, callback)
                cluster.buffer_append(tx, None, note_id)
                placed_keys.add(key)
            else:
                cluster.buffer_append(tx, reply, note_id)
            cluster.seen_notes.add(note_id)
        self._notes.clear()

    # -- crash / rejoin ------------------------------------------------------------

    def rejoin(self) -> None:
        """Come back after a crash: rejoin the cluster and resync."""
        cluster = self.cluster
        self.crashed = False
        self._note_timer_armed = False
        self._attempts = 0
        self._cooldown = self._now() + cluster.election_timeout
        if cluster.num_brokers > 1:
            for peer in self._peers():
                self._send(peer, {"kind": JOIN, "epoch": self.epoch})
        if self.is_leader and cluster.batch_len:
            self._arm_cut_timer()
        if self.is_leader:
            self._replicate()
            self._maybe_commit()
        if self._notes:
            self._arm_note_timer()
