"""Pluggable consensus engines: Kafka-style ordering, PBFT, Tendermint."""

from .base import (
    BatchBuffer,
    CommitCallback,
    ConsensusEngine,
    ConsensusStats,
    SubmissionLedger,
)
from .broker import ORDERER_ID, BrokerCluster, BrokerNode
from .kafka import BROKER_ID, KafkaOrderer
from .pbft import BYZ_EQUIVOCATE, BYZ_SILENT, PBFTCluster
from .tendermint import TendermintEngine

__all__ = [
    "BROKER_ID",
    "BYZ_EQUIVOCATE",
    "BYZ_SILENT",
    "BatchBuffer",
    "BrokerCluster",
    "BrokerNode",
    "CommitCallback",
    "ConsensusEngine",
    "ConsensusStats",
    "KafkaOrderer",
    "ORDERER_ID",
    "PBFTCluster",
    "SubmissionLedger",
    "TendermintEngine",
]
