"""Pluggable consensus engines: Kafka-style ordering, PBFT, Tendermint."""

from .base import BatchBuffer, CommitCallback, ConsensusEngine, ConsensusStats
from .kafka import KafkaOrderer
from .pbft import BYZ_EQUIVOCATE, BYZ_SILENT, PBFTCluster
from .tendermint import TendermintEngine

__all__ = [
    "BYZ_EQUIVOCATE",
    "BYZ_SILENT",
    "BatchBuffer",
    "CommitCallback",
    "ConsensusEngine",
    "ConsensusStats",
    "KafkaOrderer",
    "PBFTCluster",
    "TendermintEngine",
]
