"""Tendermint-style BFT engine.

Models the pipeline that shapes Fig 7's Tendermint curves: every submitted
transaction passes a *serial* CheckTx at the entry node before joining the
mempool, proposals are cut by a large block size (10 000) or a proposal
timeout, a proposer broadcasts the block, validators exchange PREVOTE and
PRECOMMIT rounds, and on a 2/3+ precommit quorum every node runs a serial
DeliverTx per transaction.  The serial check/deliver stages are the
bottleneck the paper calls out ("each transaction sent to Tendermint is
first checked by and then delivered to SEBDB in a serial manner, which is
a slow process"), so throughput saturates early and response time grows
with client count.

Robustness model: submissions travel over a faultable bus link to the
entry validator (``tm-0``), where nonce-carrying retries are deduplicated
through a :class:`SubmissionLedger`.  The proposer retransmits its
PROPOSE on a timer until the height commits - vote handlers are
idempotent (``>=`` quorums with sent-once flags) and a validator that
already voted re-broadcasts its latest vote on every retransmission, so
lost PREVOTE/PRECOMMIT messages heal instead of livelocking the round.
A height whose retransmission budget runs out is *abandoned*: its
replies are dropped and its nonces released, so client retries are
re-admitted and re-ordered from scratch.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ConsensusError
from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import ADMIT_NEW, BatchBuffer, ConsensusEngine, ReplyCallback

PROPOSE = "tm-propose"
PREVOTE = "tm-prevote"
PRECOMMIT = "tm-precommit"
SUBMIT = "tm-submit"

#: bus node id of the entry validator (serial CheckTx lane lives here)
ENTRY_ID = "tm-0"


class TendermintEngine(ConsensusEngine):
    """Round-based propose/prevote/precommit consensus with serial tx lanes."""

    def __init__(
        self,
        bus: MessageBus,
        n: int = 4,
        batch_txs: int = 10_000,
        timeout_ms: float = 200.0,
        submit_latency_ms: float = 1.0,
        check_tx_cost_ms: float = 0.35,
        deliver_tx_cost_ms: float = 0.35,
        max_retransmits: int = 25,
    ) -> None:
        super().__init__()
        if n < 1:
            raise ConsensusError("Tendermint needs at least one validator")
        self.bus = bus
        self.n = n
        self._quorum = (2 * n) // 3 + 1
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self._submit_latency = submit_latency_ms
        self._check_cost = check_tx_cost_ms
        self._deliver_cost = deliver_tx_cost_ms
        self._max_retransmits = max_retransmits
        self.init_client_plumbing(bus)
        #: serial CheckTx lane of the entry validator
        self._check_busy_until = 0.0
        #: serial DeliverTx lane of the (simulated co-located) SEBDB node
        self._deliver_busy_until = 0.0
        self._height = 0
        self._round_votes: dict[tuple[int, str], set[str]] = {}
        self._proposals: dict[int, list[Transaction]] = {}
        self._committed_heights: set[int] = set()
        self._abandoned_heights: set[int] = set()
        self._replies: dict[int, list[Optional[ReplyCallback]]] = {}
        #: (height, validator index) pairs whose vote was already broadcast
        self._prevote_sent: set[tuple[int, int]] = set()
        self._precommit_sent: set[tuple[int, int]] = set()
        self._in_flight = False
        for i in range(n):
            bus.register(f"tm-{i}", self._make_handler(i))

    # -- submission -------------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Ship the transaction to the entry validator over a lossy link."""
        self.stats.submitted += 1
        self.stats.messages += 1
        self.bus.send(
            "client", ENTRY_ID,
            {"kind": SUBMIT, "tx": tx, "on_reply": on_reply},
            delay_ms=self._submit_latency, fifo=True,
        )

    def _entry_receive(
        self, tx: Transaction, on_reply: Optional[ReplyCallback]
    ) -> None:
        """Entry validator: dedup retries, then serial CheckTx."""
        # re-acks travel the entry-validator->client link, so a lossy or
        # partitioned link keeps the retry loop honest
        if self.admit_submission(
            tx, on_reply, ENTRY_ID, self._submit_latency
        ) != ADMIT_NEW:
            return
        now = self.bus.clock.now_ms()
        start = max(now, self._check_busy_until)
        self._check_busy_until = start + self._check_cost
        callback = None if tx.dedup_key() else on_reply
        self.bus.schedule(
            self._check_busy_until - now,
            lambda: self._mempool_add(tx, callback),
        )

    def flush(self) -> None:
        batch = self._buffer.take_all()
        if batch:
            self._start_round(batch)

    # -- mempool / proposals ---------------------------------------------------------

    def _mempool_add(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> None:
        was_empty = len(self._buffer) == 0
        self._buffer.append(tx, on_reply)
        full = self._buffer.take_full()
        if full is not None:
            self._start_round(full)
        elif was_empty:
            epoch = self._buffer.epoch
            self.bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        if self._buffer.epoch == epoch and len(self._buffer):
            self._start_round(self._buffer.take_all())

    def _start_round(
        self,
        batch: list[tuple[Transaction, Optional[ReplyCallback]]],
        requeue_attempt: int = 0,
    ) -> None:
        """Proposer broadcasts the block for the next height."""
        if self._in_flight:
            # one height at a time; requeue behind the current round with
            # exponential backoff derived from the configured timeout (a
            # fixed 1 ms poll would make chaos runs hinge on a magic
            # constant and busy-spin while a stuck height retransmits)
            delay = min(self._timeout,
                        (self._timeout / 20.0) * (2 ** min(requeue_attempt, 10)))
            self.bus.schedule(
                delay, lambda: self._start_round(batch, requeue_attempt + 1)
            )
            return
        self._in_flight = True
        height = self._height
        txs = [tx for tx, _ in batch]
        self._proposals[height] = txs
        self._replies[height] = [cb for _, cb in batch]
        self._send_proposal(height)
        self.bus.schedule(self._timeout, lambda: self._retransmit(height, 1))

    def _send_proposal(self, height: int) -> None:
        txs = self._proposals[height]
        proposer = f"tm-{height % self.n}"
        self.stats.messages += self.n
        for i in range(self.n):
            self.bus.send(
                proposer, f"tm-{i}",
                {"kind": PROPOSE, "height": height, "txs": txs},
            )

    def _retransmit(self, height: int, attempt: int) -> None:
        """Proposer liveness timer: re-broadcast until committed or give up."""
        if height in self._committed_heights or height not in self._proposals:
            return
        if attempt > self._max_retransmits:
            self._abandon(height)
            return
        self._send_proposal(height)
        self.bus.schedule(
            self._timeout, lambda: self._retransmit(height, attempt + 1)
        )

    def _abandon(self, height: int) -> None:
        """Retransmission budget exhausted: drop the round entirely.

        Pending replies are orphaned (the client's timeout fires and its
        retry is re-admitted, because the nonces are released here) and
        the engine moves on to the next height.
        """
        self._abandoned_heights.add(height)
        txs = self._proposals.pop(height, [])
        self._replies.pop(height, None)
        for tx in txs:
            self.ledger.abandon(tx)
        self._height += 1
        self._in_flight = False

    # -- vote rounds -----------------------------------------------------------------

    def _make_handler(self, index: int):
        node_id = f"tm-{index}"

        def broadcast(kind: str, height: int) -> None:
            self.stats.messages += self.n
            for i in range(self.n):
                self.bus.send(
                    node_id, f"tm-{i}",
                    {"kind": kind, "height": height, "voter": node_id},
                )

        def handle(src: str, message: dict[str, Any]) -> None:
            kind = message["kind"]
            if kind == SUBMIT:
                if index == 0:
                    self._entry_receive(message["tx"], message.get("on_reply"))
                return
            height = message["height"]
            if height in self._committed_heights or height in self._abandoned_heights:
                return
            if kind == PROPOSE:
                if (height, index) not in self._prevote_sent:
                    self._prevote_sent.add((height, index))
                    broadcast(PREVOTE, height)
                elif (height, index) in self._precommit_sent:
                    # retransmitted proposal: re-broadcast our latest vote
                    # so peers whose copy was lost can still reach quorum
                    broadcast(PRECOMMIT, height)
                else:
                    broadcast(PREVOTE, height)
            elif kind == PREVOTE:
                votes = self._round_votes.setdefault((height, f"pv-{index}"), set())
                votes.add(message["voter"])
                if (len(votes) >= self._quorum
                        and (height, index) not in self._precommit_sent):
                    self._precommit_sent.add((height, index))
                    broadcast(PRECOMMIT, height)
            elif kind == PRECOMMIT:
                votes = self._round_votes.setdefault((height, f"pc-{index}"), set())
                votes.add(message["voter"])
                if len(votes) >= self._quorum and index == 0:
                    self._commit(height)

        return handle

    # -- commit ------------------------------------------------------------------------

    def _commit(self, height: int) -> None:
        if height in self._committed_heights or height not in self._proposals:
            return
        self._committed_heights.add(height)
        txs = self._proposals.pop(height)
        replies = self._replies.pop(height)
        # serial DeliverTx into SEBDB
        now = self.bus.clock.now_ms()
        start = max(now, self._deliver_busy_until)
        self._deliver_busy_until = start + self._deliver_cost * len(txs)
        done_in = self._deliver_busy_until - now

        def finish() -> None:
            # commit acks are real entry->client messages subject to the
            # same link faults as any other traffic
            self.finish_commit(list(zip(txs, replies)), ENTRY_ID,
                               self.bus.clock.now_ms(), self._submit_latency)
            self._height += 1
            self._in_flight = False

        self.bus.schedule(done_in, finish)
