"""Tendermint-style BFT engine.

Models the pipeline that shapes Fig 7's Tendermint curves: every submitted
transaction passes a *serial* CheckTx at the entry node before joining the
mempool, proposals are cut by a large block size (10 000) or a proposal
timeout, a proposer broadcasts the block, validators exchange PREVOTE and
PRECOMMIT rounds, and on a 2/3+ precommit quorum every node runs a serial
DeliverTx per transaction.  The serial check/deliver stages are the
bottleneck the paper calls out ("each transaction sent to Tendermint is
first checked by and then delivered to SEBDB in a serial manner, which is
a slow process"), so throughput saturates early and response time grows
with client count.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ConsensusError
from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import BatchBuffer, ConsensusEngine, ReplyCallback

PROPOSE = "tm-propose"
PREVOTE = "tm-prevote"
PRECOMMIT = "tm-precommit"


class TendermintEngine(ConsensusEngine):
    """Round-based propose/prevote/precommit consensus with serial tx lanes."""

    def __init__(
        self,
        bus: MessageBus,
        n: int = 4,
        batch_txs: int = 10_000,
        timeout_ms: float = 200.0,
        submit_latency_ms: float = 1.0,
        check_tx_cost_ms: float = 0.35,
        deliver_tx_cost_ms: float = 0.35,
    ) -> None:
        super().__init__()
        if n < 1:
            raise ConsensusError("Tendermint needs at least one validator")
        self.bus = bus
        self.n = n
        self._quorum = (2 * n) // 3 + 1
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self._submit_latency = submit_latency_ms
        self._check_cost = check_tx_cost_ms
        self._deliver_cost = deliver_tx_cost_ms
        #: serial CheckTx lane of the entry validator
        self._check_busy_until = 0.0
        #: serial DeliverTx lane of the (simulated co-located) SEBDB node
        self._deliver_busy_until = 0.0
        self._height = 0
        self._round_votes: dict[tuple[int, str], set[str]] = {}
        self._proposals: dict[int, list[Transaction]] = {}
        self._committed_heights: set[int] = set()
        self._replies: dict[int, list[Optional[ReplyCallback]]] = {}
        self._in_flight = False
        for i in range(n):
            bus.register(f"tm-{i}", self._make_handler(i))

    # -- submission -------------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Serial CheckTx, then mempool."""
        self.stats.submitted += 1
        now = self.bus.clock.now_ms()
        start = max(now + self._submit_latency, self._check_busy_until)
        self._check_busy_until = start + self._check_cost
        self.bus.schedule(
            self._check_busy_until - now,
            lambda: self._mempool_add(tx, on_reply),
        )

    def flush(self) -> None:
        batch = self._buffer.take_all()
        if batch:
            self._start_round(batch)

    # -- mempool / proposals ---------------------------------------------------------

    def _mempool_add(self, tx: Transaction, on_reply: Optional[ReplyCallback]) -> None:
        was_empty = len(self._buffer) == 0
        self._buffer.append(tx, on_reply)
        full = self._buffer.take_full()
        if full is not None:
            self._start_round(full)
        elif was_empty:
            epoch = self._buffer.epoch
            self.bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        if self._buffer.epoch == epoch and len(self._buffer):
            self._start_round(self._buffer.take_all())

    def _start_round(
        self, batch: list[tuple[Transaction, Optional[ReplyCallback]]]
    ) -> None:
        """Proposer broadcasts the block for the next height."""
        if self._in_flight:
            # one height at a time; requeue behind the current round
            self.bus.schedule(1.0, lambda: self._start_round(batch))
            return
        self._in_flight = True
        height = self._height
        txs = [tx for tx, _ in batch]
        self._proposals[height] = txs
        self._replies[height] = [cb for _, cb in batch]
        proposer = f"tm-{height % self.n}"
        self.stats.messages += self.n
        for i in range(self.n):
            self.bus.send(
                proposer, f"tm-{i}",
                {"kind": PROPOSE, "height": height, "txs": txs},
            )

    # -- vote rounds -----------------------------------------------------------------

    def _make_handler(self, index: int):
        node_id = f"tm-{index}"

        def handle(src: str, message: dict[str, Any]) -> None:
            kind = message["kind"]
            height = message["height"]
            if kind == PROPOSE:
                self.stats.messages += self.n
                for i in range(self.n):
                    self.bus.send(
                        node_id, f"tm-{i}",
                        {"kind": PREVOTE, "height": height, "voter": node_id},
                    )
            elif kind == PREVOTE:
                votes = self._round_votes.setdefault((height, f"pv-{index}"), set())
                votes.add(message["voter"])
                if len(votes) == self._quorum:
                    self.stats.messages += self.n
                    for i in range(self.n):
                        self.bus.send(
                            node_id, f"tm-{i}",
                            {"kind": PRECOMMIT, "height": height, "voter": node_id},
                        )
            elif kind == PRECOMMIT:
                votes = self._round_votes.setdefault((height, f"pc-{index}"), set())
                votes.add(message["voter"])
                if len(votes) == self._quorum and index == 0:
                    self._commit(height)

        return handle

    # -- commit ------------------------------------------------------------------------

    def _commit(self, height: int) -> None:
        if height in self._committed_heights:
            return
        self._committed_heights.add(height)
        txs = self._proposals.pop(height)
        replies = self._replies.pop(height)
        # serial DeliverTx into SEBDB
        now = self.bus.clock.now_ms()
        start = max(now, self._deliver_busy_until)
        self._deliver_busy_until = start + self._deliver_cost * len(txs)
        done_in = self._deliver_busy_until - now

        def finish() -> None:
            self._deliver(txs)
            commit_time = self.bus.clock.now_ms()
            for reply in replies:
                if reply is not None:
                    self.bus.schedule(
                        self._submit_latency,
                        (lambda cb: lambda: cb(commit_time))(reply),
                    )
            self._height += 1
            self._in_flight = False

        self.bus.schedule(done_in, finish)
