"""Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99).

A faithful in-simulation PBFT: ``n = 3f + 1`` replicas exchange
PRE-PREPARE / PREPARE / COMMIT over the message bus, execute batches in
sequence order, and survive up to ``f`` Byzantine replicas (silent or
equivocating).  A request timer drives view changes when the primary
fails: backups broadcast VIEW-CHANGE, and on ``2f + 1`` votes the next
primary installs the new view and re-proposes pending requests.

This is the BFT plug-in of SEBDB's consensus layer (Example 4 of the
paper runs four full nodes under PBFT) and the adversary model behind the
thin client's auxiliary-node sampling (eq. 6).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..common.errors import ConsensusError
from ..common.hashing import sha256
from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import BatchBuffer, ConsensusEngine, ReplyCallback, SubmissionLedger

PRE_PREPARE = "pbft-pre-prepare"
PREPARE = "pbft-prepare"
COMMIT = "pbft-commit"
REQUEST = "pbft-request"
VIEW_CHANGE = "pbft-view-change"
NEW_VIEW = "pbft-new-view"

#: Byzantine behaviours a replica can be configured with.
BYZ_SILENT = "silent"
BYZ_EQUIVOCATE = "equivocate"


def _batch_digest(batch: list[Transaction]) -> bytes:
    payload = b"".join(tx.to_bytes() for tx in batch)
    return sha256(payload)


@dataclasses.dataclass
class _SeqState:
    """Per-sequence-number protocol state at one replica."""

    batch: Optional[list[Transaction]] = None
    digest: Optional[bytes] = None
    view: int = 0
    prepares: set[str] = dataclasses.field(default_factory=set)
    commits: set[str] = dataclasses.field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


class _Replica:
    """One PBFT replica's protocol state machine."""

    def __init__(self, cluster: "PBFTCluster", index: int) -> None:
        self.cluster = cluster
        self.index = index
        self.node_id = f"pbft-{index}"
        self.view = 0
        self.next_seq = 0          # primary only: next sequence to assign
        self.last_executed = -1
        self.states: dict[int, _SeqState] = {}
        self.byzantine: Optional[str] = None
        self.view_change_votes: dict[int, set[str]] = {}
        self.pending_requests: list[tuple[Transaction, float]] = []
        cluster.bus.register(self.node_id, self.handle)

    # -- helpers -------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.cluster.n

    @property
    def f(self) -> int:
        return self.cluster.f

    def primary_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.index

    def state(self, seq: int) -> _SeqState:
        return self.states.setdefault(seq, _SeqState())

    def _broadcast(self, message: dict[str, Any]) -> None:
        if self.byzantine == BYZ_SILENT:
            return
        self.cluster.stats.messages += self.n - 1
        for peer in range(self.n):
            if peer != self.index:
                self.cluster.bus.send(self.node_id, f"pbft-{peer}", message)

    def _maybe_corrupt(self, digest: bytes) -> bytes:
        if self.byzantine == BYZ_EQUIVOCATE:
            return sha256(b"equivocation" + digest)
        return digest

    # -- primary: propose -------------------------------------------------------

    def propose(self, batch: list[Transaction]) -> None:
        if self.byzantine == BYZ_SILENT:
            return
        seq = self.next_seq
        self.next_seq += 1
        self.propose_at(seq, batch)

    def propose_at(self, seq: int, batch: list[Transaction]) -> None:
        """(Re-)propose ``batch`` at a fixed sequence in the current view.

        The view-change path uses this to re-run the three-phase protocol
        for in-flight sequences the crashed primary left behind; votes
        collected under the old view are discarded.
        """
        if self.byzantine == BYZ_SILENT:
            return
        digest = _batch_digest(batch)
        state = self.state(seq)
        state.batch = batch
        state.digest = digest
        state.view = self.view
        state.prepares = {self.node_id}
        state.commits = set()
        state.prepared = False
        message = {
            "kind": PRE_PREPARE,
            "view": self.view,
            "seq": seq,
            "digest": self._maybe_corrupt(digest),
            "batch": batch,
        }
        # the pre-prepare doubles as the primary's own prepare vote
        self._broadcast(message)
        self.on_prepare_quorum_check(seq)

    # -- message handling ----------------------------------------------------------

    def handle(self, src: str, message: dict[str, Any]) -> None:
        kind = message.get("kind")
        if self.byzantine == BYZ_SILENT:
            return
        if kind == REQUEST:
            self.on_request(message)
        elif kind == PRE_PREPARE:
            self.on_pre_prepare(src, message)
        elif kind == PREPARE:
            self.on_prepare(src, message)
        elif kind == COMMIT:
            self.on_commit_msg(src, message)
        elif kind == VIEW_CHANGE:
            self.on_view_change(src, message)
        elif kind == NEW_VIEW:
            self.on_new_view(src, message)

    def on_request(self, message: dict[str, Any]) -> None:
        """Every replica tracks requests so backups can detect a dead primary."""
        tx: Transaction = message["tx"]
        now = self.cluster.bus.clock.now_ms()
        self.pending_requests.append((tx, now))
        if self.is_primary:
            self.cluster.primary_buffer_append(self, tx)
        else:
            deadline_epoch = len(self.pending_requests)
            self.cluster.bus.schedule(
                self.cluster.request_timeout_ms,
                lambda: self._check_progress(deadline_epoch),
            )

    def _check_progress(self, epoch: int) -> None:
        """Backup timer: if requests are stuck, vote for a view change."""
        still_pending = [
            (tx, t0)
            for tx, t0 in self.pending_requests
            if not self.cluster.was_executed(tx)
        ]
        self.pending_requests = still_pending
        if still_pending and len(still_pending) >= 1 and epoch > 0:
            self.start_view_change(self.view + 1)

    def on_pre_prepare(self, src: str, message: dict[str, Any]) -> None:
        view, seq = message["view"], message["seq"]
        if src != f"pbft-{self.primary_of(view)}":
            return  # only the view's primary may pre-prepare
        if view > self.view:
            # the cluster moved on while we were crashed or partitioned;
            # a pre-prepare from the legitimate primary of a higher view
            # doubles as its new-view announcement (same trust base as
            # NEW_VIEW in this simulation), letting us rejoin instead of
            # ignoring the live view forever
            self.view = view
        if view != self.view:
            return  # stale view
        batch: list[Transaction] = message["batch"]
        digest = _batch_digest(batch)
        if digest != message["digest"]:
            # primary equivocated; refuse and push towards a view change
            self.start_view_change(self.view + 1)
            return
        state = self.state(seq)
        if state.committed:
            return  # this sequence is already decided locally
        if view > state.view:
            # a new view re-proposes this undecided sequence: votes
            # gathered under the dead view are void, the protocol re-runs
            state.prepares = set()
            state.commits = set()
            state.prepared = False
            state.digest = None
        if state.digest is not None and state.digest != digest:
            return
        state.batch = batch
        state.digest = digest
        state.view = view
        self._broadcast(
            {
                "kind": PREPARE,
                "view": view,
                "seq": seq,
                "digest": self._maybe_corrupt(digest),
            }
        )
        # a replica counts its own prepare vote
        state.prepares.add(self.node_id)
        # the sending primary's pre-prepare counts as its prepare
        state.prepares.add(src)
        self.on_prepare_quorum_check(seq)

    def on_prepare(self, src: str, message: dict[str, Any]) -> None:
        state = self.state(message["seq"])
        if message["view"] != self.view:
            return
        if state.digest is not None and message["digest"] != state.digest:
            return  # mismatching digest (possibly Byzantine) - ignore
        state.prepares.add(src)
        self.on_prepare_quorum_check(message["seq"])

    def on_prepare_quorum_check(self, seq: int) -> None:
        """prepared(seq) := pre-prepare + 2f+1 prepare votes (incl. own)."""
        state = self.state(seq)
        if state.prepared or state.batch is None:
            return
        if len(state.prepares) >= 2 * self.f + 1 or self.n == 1:
            state.prepared = True
            self._broadcast(
                {
                    "kind": COMMIT,
                    "view": state.view,
                    "seq": seq,
                    "digest": self._maybe_corrupt(state.digest or b""),
                }
            )
            state.commits.add(self.node_id)
            self.on_commit_quorum_check(seq)

    def on_commit_msg(self, src: str, message: dict[str, Any]) -> None:
        state = self.state(message["seq"])
        if state.digest is not None and message["digest"] != state.digest:
            return
        state.commits.add(src)
        self.on_commit_quorum_check(message["seq"])

    def on_commit_quorum_check(self, seq: int) -> None:
        """committed(seq) := prepared + 2f + 1 commits (incl. own)."""
        state = self.state(seq)
        if state.committed or not state.prepared:
            return
        if len(state.commits) >= 2 * self.f + 1 or self.n == 1:
            state.committed = True
            self.try_execute()

    def try_execute(self) -> None:
        """Execute committed sequences strictly in order."""
        while True:
            state = self.states.get(self.last_executed + 1)
            if state is None or not state.committed or state.batch is None:
                return
            self.last_executed += 1
            state.executed = True
            self.cluster.on_replica_executed(self, self.last_executed, state.batch)

    # -- view change -------------------------------------------------------------------

    def start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        if self.node_id in votes:
            return
        votes.add(self.node_id)
        self._broadcast({"kind": VIEW_CHANGE, "view": new_view})
        self._maybe_install(new_view)

    def on_view_change(self, src: str, message: dict[str, Any]) -> None:
        new_view = message["view"]
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        votes.add(src)
        # echo our own vote once a quorum is forming (f+1 rule)
        if len(votes) >= self.f + 1 and self.node_id not in votes:
            votes.add(self.node_id)
            self._broadcast({"kind": VIEW_CHANGE, "view": new_view})
        self._maybe_install(new_view)

    def _maybe_install(self, new_view: int) -> None:
        votes = self.view_change_votes.get(new_view, set())
        if len(votes) >= 2 * self.f + 1 and new_view > self.view:
            self.view = new_view
            if self.is_primary:
                self.next_seq = max(self.next_seq, self.last_executed + 1,
                                    self.cluster.max_seq_seen() + 1)
                self._broadcast({"kind": NEW_VIEW, "view": new_view})
                reproposed = self._repropose_in_flight()
                self.cluster.reassign_pending(self, exclude=reproposed)

    def _repropose_in_flight(self) -> set[bytes]:
        """New-primary duty: re-run every undecided sequence number.

        Sequences the crashed primary proposed but never drove to commit
        would stall execution forever (replicas execute strictly in
        order).  The new primary re-proposes the batch it saw for each
        such sequence, and fills sequences whose content it never
        received with an explicit no-op batch - the classic new-view
        null request.  Returns the hashes of every re-proposed
        transaction so pending reassignment skips them.
        """
        reproposed: set[bytes] = set()
        for seq in range(self.last_executed + 1, self.next_seq):
            state = self.states.get(seq)
            if state is not None and state.executed:
                continue
            batch = state.batch if state is not None and state.batch else []
            for tx in batch:
                reproposed.add(tx.hash())
            self.propose_at(seq, batch)
        return reproposed

    def on_new_view(self, src: str, message: dict[str, Any]) -> None:
        new_view = message["view"]
        if new_view > self.view and src == f"pbft-{self.primary_of(new_view)}":
            self.view = new_view


class PBFTCluster(ConsensusEngine):
    """A PBFT replica group exposed through the plug-in interface."""

    def __init__(
        self,
        bus: MessageBus,
        n: int = 4,
        batch_txs: int = 100,
        timeout_ms: float = 100.0,
        request_timeout_ms: float = 2_000.0,
        submit_latency_ms: float = 1.0,
    ) -> None:
        super().__init__()
        if n < 1:
            raise ConsensusError("PBFT needs at least one replica")
        self.bus = bus
        self.n = n
        self.f = (n - 1) // 3
        self.request_timeout_ms = request_timeout_ms
        self._submit_latency = submit_latency_ms
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self.replicas = [_Replica(self, i) for i in range(n)]
        self.ledger = SubmissionLedger()
        self._executed_digests: set[bytes] = set()
        #: hashes appended to the primary buffer or proposed - duplicates
        #: (retries and re-broadcast requests) are not buffered again
        self._in_pipeline: set[bytes] = set()
        self._exec_counts: dict[int, int] = {}
        self._delivered: set[int] = set()
        self._replies: dict[bytes, ReplyCallback] = {}

    # -- fault injection -----------------------------------------------------

    def make_byzantine(self, index: int, mode: str = BYZ_SILENT) -> None:
        """Turn replica ``index`` Byzantine (``silent`` or ``equivocate``)."""
        if mode not in (BYZ_SILENT, BYZ_EQUIVOCATE):
            raise ConsensusError(f"unknown Byzantine mode {mode!r}")
        self.replicas[index].byzantine = mode

    def heal_byzantine(self, index: int) -> None:
        """Restore replica ``index`` to honest behaviour (mid-run toggle)."""
        self.replicas[index].byzantine = None

    def crash(self, index: int) -> None:
        """Crash-stop a replica (drops all its traffic)."""
        self.bus.fail(f"pbft-{index}")
        self.replicas[index].byzantine = BYZ_SILENT

    def restart(self, index: int) -> None:
        """Bring a crashed replica back; it rejoins the live view on the
        next pre-prepare it receives from that view's primary."""
        self.bus.heal(f"pbft-{index}")
        self.replicas[index].byzantine = None

    # -- submission -------------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        self.stats.submitted += 1
        if not self.ledger.admit(tx, on_reply):
            self.stats.deduplicated += 1
            replayed = self.ledger.replay_ack(tx)
            if replayed is not None:
                # the transaction already committed; re-ack immediately
                if on_reply is not None:
                    self.bus.schedule(
                        self._submit_latency,
                        (lambda cb, t: lambda: cb(t))(on_reply, replayed),
                    )
                return
            # still pending: fall through and re-broadcast the REQUEST -
            # the original may never have reached the primary, and the
            # re-broadcast re-arms the backups' progress timers
        elif tx.dedup_key() is None and on_reply is not None:
            self._replies[tx.hash()] = on_reply

        def arrive() -> None:
            # the client broadcasts its request so backups can monitor progress
            for replica in self.replicas:
                self.bus.send("client", replica.node_id, {"kind": REQUEST, "tx": tx})

        self.bus.schedule(self._submit_latency, arrive)

    def flush(self) -> None:
        batch = self._buffer.take_all()
        if batch:
            self._propose([tx for tx, _ in batch])

    # -- primary-side batching ------------------------------------------------------

    def primary_buffer_append(self, replica: _Replica, tx: Transaction) -> None:
        digest = tx.hash()
        if digest in self._in_pipeline or digest in self._executed_digests:
            return  # a retry of a request already buffered, proposed or done
        self._in_pipeline.add(digest)
        self._buffer.append(tx, None)
        full = self._buffer.take_full()
        if full is not None:
            self._propose([t for t, _ in full], replica)
        elif len(self._buffer) == 1:
            epoch = self._buffer.epoch
            self.bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        if self._buffer.epoch == epoch and len(self._buffer):
            self._propose([t for t, _ in self._buffer.take_all()])

    def _propose(self, batch: list[Transaction], replica: Optional[_Replica] = None) -> None:
        if not batch:
            return
        for tx in batch:
            self._in_pipeline.add(tx.hash())
        primary = replica
        if primary is None or not primary.is_primary:
            view = max(r.view for r in self.replicas)
            primary = self.replicas[view % self.n]
        primary.propose(batch)

    def reassign_pending(
        self, new_primary: _Replica, exclude: frozenset[bytes] | set[bytes] = frozenset()
    ) -> None:
        """After a view change, the new primary re-proposes stuck requests.

        ``exclude`` holds hashes the new primary already re-proposed for
        in-flight sequences, so they are not proposed a second time.
        """
        stuck = []
        seen: set[bytes] = set()
        for tx, _ in new_primary.pending_requests:
            digest = tx.hash()
            if (digest in exclude or digest in seen
                    or digest in self._executed_digests):
                continue
            seen.add(digest)
            stuck.append(tx)
        new_primary.pending_requests = []
        if stuck:
            self._propose(stuck, new_primary)

    # -- execution plumbing --------------------------------------------------------------

    def max_seq_seen(self) -> int:
        seqs = [max(r.states) for r in self.replicas if r.states]
        return max(seqs) if seqs else -1

    def was_executed(self, tx: Transaction) -> bool:
        return tx.hash() in self._executed_digests

    def on_replica_executed(
        self, replica: _Replica, seq: int, batch: list[Transaction]
    ) -> None:
        """Called by each replica as it executes; drives delivery and replies."""
        count = self._exec_counts.get(seq, 0) + 1
        self._exec_counts[seq] = count
        # deliver to the SEBDB nodes once the batch is final (f+1 executions
        # guarantee at least one correct replica executed it)
        if count >= self.f + 1 and seq not in self._delivered:
            self._delivered.add(seq)
            # exactly-once delivery: a view change can re-propose a request
            # at a new sequence while the old one also survives, so filter
            # every transaction already delivered (cross-batch and within
            # this batch) before handing the rest to the SEBDB nodes
            fresh: list[Transaction] = []
            for tx in batch:
                digest = tx.hash()
                if digest in self._executed_digests:
                    continue
                self._executed_digests.add(digest)
                fresh.append(tx)
            if not fresh:
                return
            self._deliver(fresh)
            now = self.bus.clock.now_ms()
            for tx in fresh:
                callbacks = self.ledger.commit(tx, now)
                reply = self._replies.pop(tx.hash(), None)
                if reply is not None:
                    callbacks = callbacks + [reply]
                for callback in callbacks:
                    self.bus.schedule(
                        self._submit_latency,
                        (lambda cb, t: lambda: cb(t))(callback, now),
                    )
