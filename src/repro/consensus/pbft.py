"""Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99).

A faithful in-simulation PBFT: ``n = 3f + 1`` replicas exchange
PRE-PREPARE / PREPARE / COMMIT over the message bus, execute batches in
sequence order, and survive up to ``f`` Byzantine replicas (silent or
equivocating).  A request timer drives view changes when the primary
fails: backups broadcast VIEW-CHANGE, and on ``2f + 1`` votes the next
primary installs the new view and re-proposes pending requests.

Liveness under *cascading* failures comes from two mechanisms on top of
the basic protocol:

* **Repeated view-change timers.**  Voting for view ``v+1`` arms an
  exponentially backed-off escalation timer; if the view change stalls
  (the next primary is itself crashed or partitioned) and client
  requests are still stuck when it fires, the replica escalates to
  ``v+2``, then ``v+3``, ... - the classic doubled-timeout rule that
  makes PBFT live as long as at most ``f`` replicas are faulty.
* **Checkpoints + state transfer.**  Every ``checkpoint_interval``
  executed sequences a replica broadcasts a CHECKPOINT carrying its
  running execution digest; ``2f+1`` matching votes certify the prefix,
  garbage-collect per-sequence state, and form a transferable
  certificate.  A replica that rejoins far behind (long partition,
  crash) sends STATE-REQ and installs a peer's certified checkpoint plus
  the committed tail, skipping the three-phase protocol for every
  covered sequence instead of waiting for new-view re-proposals.  When
  the tail exceeds ``state_tail_limit`` the responder ships only the
  certificate plus a ``(seq, digest)`` **manifest** - bulk payloads
  travel over the gossip mesh (see :mod:`repro.node.observer`), and the
  manifest digests pin what the lagging replica may accept.

This is the BFT plug-in of SEBDB's consensus layer (Example 4 of the
paper runs four full nodes under PBFT) and the adversary model behind the
thin client's auxiliary-node sampling (eq. 6).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..common.errors import ConsensusError
from ..common.hashing import sha256
from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import (
    ADMIT_NEW,
    ADMIT_REPLAYED,
    BatchBuffer,
    Checkpoint,
    ConsensusEngine,
    ReplyCallback,
)

PRE_PREPARE = "pbft-pre-prepare"
PREPARE = "pbft-prepare"
COMMIT = "pbft-commit"
REQUEST = "pbft-request"
VIEW_CHANGE = "pbft-view-change"
NEW_VIEW = "pbft-new-view"
CHECKPOINT = "pbft-checkpoint"
STATE_REQ = "pbft-state-req"
STATE_RESP = "pbft-state-resp"

#: Byzantine behaviours a replica can be configured with.
BYZ_SILENT = "silent"
BYZ_EQUIVOCATE = "equivocate"


def _batch_digest(batch: list[Transaction]) -> bytes:
    payload = b"".join(tx.to_bytes() for tx in batch)
    return sha256(payload)


@dataclasses.dataclass
class _SeqState:
    """Per-sequence-number protocol state at one replica."""

    batch: Optional[list[Transaction]] = None
    digest: Optional[bytes] = None
    view: int = 0
    prepares: set[str] = dataclasses.field(default_factory=set)
    commits: set[str] = dataclasses.field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


class _Replica:
    """One PBFT replica's protocol state machine."""

    def __init__(self, cluster: "PBFTCluster", index: int) -> None:
        self.cluster = cluster
        self.index = index
        self.node_id = f"pbft-{index}"
        self.view = 0
        self.next_seq = 0          # primary only: next sequence to assign
        self.last_executed = -1
        self.states: dict[int, _SeqState] = {}
        self.byzantine: Optional[str] = None
        self.view_change_votes: dict[int, set[str]] = {}
        self.pending_requests: list[tuple[Transaction, float]] = []
        #: running digest chain over executed batches (checkpoint material)
        self.exec_digest = b"\x00" * 32
        #: (seq, digest) -> replicas that announced that checkpoint
        self.checkpoint_votes: dict[tuple[int, bytes], set[str]] = {}
        #: latest 2f+1-certified checkpoint we hold (serves STATE-REQs)
        self.stable_checkpoint: Optional[Checkpoint] = None
        #: sequences adopted from a transferred checkpoint, not re-executed
        self.sequences_skipped = 0
        #: seq -> certified batch digest from a bulk-transfer manifest;
        #: inline tail entries must match before they are accepted
        self.state_manifest: dict[int, bytes] = {}
        #: simulated time before which we will not re-broadcast STATE-REQ
        self._state_req_cooldown_until = 0.0
        #: progress timers do not initiate another view change before this:
        #: a fresh vote or a fresh installation restarts the clock, giving
        #: the (possibly new) primary one full timeout to make progress
        self._vc_cooldown_until = 0.0
        cluster.bus.register(self.node_id, self.handle)

    # -- helpers -------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.cluster.n

    @property
    def f(self) -> int:
        return self.cluster.f

    def primary_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.index

    def state(self, seq: int) -> _SeqState:
        return self.states.setdefault(seq, _SeqState())

    def _broadcast(self, message: dict[str, Any]) -> None:
        if self.byzantine == BYZ_SILENT:
            return
        self.cluster.stats.messages += self.n - 1
        for peer in range(self.n):
            if peer != self.index:
                self.cluster.bus.send(self.node_id, f"pbft-{peer}", message)

    def _maybe_corrupt(self, digest: bytes) -> bytes:
        if self.byzantine == BYZ_EQUIVOCATE:
            return sha256(b"equivocation" + digest)
        return digest

    # -- primary: propose -------------------------------------------------------

    def propose(self, batch: list[Transaction]) -> None:
        if self.byzantine == BYZ_SILENT:
            return
        seq = self.next_seq
        self.next_seq += 1
        self.propose_at(seq, batch)

    def propose_at(self, seq: int, batch: list[Transaction]) -> None:
        """(Re-)propose ``batch`` at a fixed sequence in the current view.

        The view-change path uses this to re-run the three-phase protocol
        for in-flight sequences the crashed primary left behind; votes
        collected under the old view are discarded.
        """
        if self.byzantine == BYZ_SILENT:
            return
        digest = _batch_digest(batch)
        state = self.state(seq)
        state.batch = batch
        state.digest = digest
        state.view = self.view
        state.prepares = {self.node_id}
        state.commits = set()
        state.prepared = False
        message = {
            "kind": PRE_PREPARE,
            "view": self.view,
            "seq": seq,
            "digest": self._maybe_corrupt(digest),
            "batch": batch,
        }
        # the pre-prepare doubles as the primary's own prepare vote
        self._broadcast(message)
        self.on_prepare_quorum_check(seq)

    # -- message handling ----------------------------------------------------------

    def handle(self, src: str, message: dict[str, Any]) -> None:
        kind = message.get("kind")
        if self.byzantine == BYZ_SILENT:
            return
        if kind == REQUEST:
            self.on_request(message)
        elif kind == PRE_PREPARE:
            self.on_pre_prepare(src, message)
        elif kind == PREPARE:
            self.on_prepare(src, message)
        elif kind == COMMIT:
            self.on_commit_msg(src, message)
        elif kind == VIEW_CHANGE:
            self.on_view_change(src, message)
        elif kind == NEW_VIEW:
            self.on_new_view(src, message)
        elif kind == CHECKPOINT:
            self.on_checkpoint(src, message)
        elif kind == STATE_REQ:
            self.on_state_req(src, message)
        elif kind == STATE_RESP:
            self.on_state_resp(src, message)

    def on_request(self, message: dict[str, Any]) -> None:
        """Every replica tracks requests so backups can detect a dead primary."""
        tx: Transaction = message["tx"]
        now = self.cluster.bus.clock.now_ms()
        self.pending_requests.append((tx, now))
        if self.is_primary:
            self.cluster.primary_buffer_append(self, tx)
        else:
            deadline_epoch = len(self.pending_requests)
            self.cluster.bus.schedule(
                self.cluster.request_timeout_ms,
                lambda: self._check_progress(deadline_epoch),
            )

    def _check_progress(self, epoch: int) -> None:
        """Backup timer: if requests are stuck, vote for a view change."""
        still_pending = [
            (tx, t0)
            for tx, t0 in self.pending_requests
            if not self.cluster.was_executed(tx)
        ]
        self.pending_requests = still_pending
        if not still_pending or epoch <= 0:
            return
        if self.cluster.bus.clock.now_ms() < self._vc_cooldown_until:
            # we voted (or installed a view) within the last timeout
            # window; the escalation timer owns the next move - without
            # this, every request arrival re-votes v+1 each timeout and
            # the cluster churns through views faster than it commits
            return
        self.start_view_change(self.view + 1)

    def _has_stuck_requests(self) -> bool:
        """Prune executed requests; True when any are still undelivered."""
        self.pending_requests = [
            (tx, t0)
            for tx, t0 in self.pending_requests
            if not self.cluster.was_executed(tx)
        ]
        return bool(self.pending_requests)

    def on_pre_prepare(self, src: str, message: dict[str, Any]) -> None:
        view, seq = message["view"], message["seq"]
        if src != f"pbft-{self.primary_of(view)}":
            return  # only the view's primary may pre-prepare
        if view > self.view:
            # the cluster moved on while we were crashed or partitioned;
            # a pre-prepare from the legitimate primary of a higher view
            # doubles as its new-view announcement (same trust base as
            # NEW_VIEW in this simulation), letting us rejoin instead of
            # ignoring the live view forever
            self.view = view
        if view != self.view:
            return  # stale view
        batch: list[Transaction] = message["batch"]
        digest = _batch_digest(batch)
        if digest != message["digest"]:
            # primary equivocated; refuse and push towards a view change
            self.start_view_change(self.view + 1)
            return
        if seq > self.last_executed + self.cluster.checkpoint_interval:
            # we are more than a checkpoint interval behind the live
            # protocol (long partition / crash): ask peers for a certified
            # checkpoint instead of waiting to re-run every sequence
            self.request_state_transfer()
        state = self.state(seq)
        if state.committed:
            return  # this sequence is already decided locally
        if view > state.view:
            # a new view re-proposes this undecided sequence: votes
            # gathered under the dead view are void, the protocol re-runs
            state.prepares = set()
            state.commits = set()
            state.prepared = False
            state.digest = None
        if state.digest is not None and state.digest != digest:
            return
        state.batch = batch
        state.digest = digest
        state.view = view
        self._broadcast(
            {
                "kind": PREPARE,
                "view": view,
                "seq": seq,
                "digest": self._maybe_corrupt(digest),
            }
        )
        # a replica counts its own prepare vote
        state.prepares.add(self.node_id)
        # the sending primary's pre-prepare counts as its prepare
        state.prepares.add(src)
        self.on_prepare_quorum_check(seq)

    def on_prepare(self, src: str, message: dict[str, Any]) -> None:
        state = self.state(message["seq"])
        if message["view"] != self.view:
            return
        if state.digest is not None and message["digest"] != state.digest:
            return  # mismatching digest (possibly Byzantine) - ignore
        state.prepares.add(src)
        self.on_prepare_quorum_check(message["seq"])

    def on_prepare_quorum_check(self, seq: int) -> None:
        """prepared(seq) := pre-prepare + 2f+1 prepare votes (incl. own)."""
        state = self.state(seq)
        if state.prepared or state.batch is None:
            return
        if len(state.prepares) >= 2 * self.f + 1 or self.n == 1:
            state.prepared = True
            self._broadcast(
                {
                    "kind": COMMIT,
                    "view": state.view,
                    "seq": seq,
                    "digest": self._maybe_corrupt(state.digest or b""),
                }
            )
            state.commits.add(self.node_id)
            self.on_commit_quorum_check(seq)

    def on_commit_msg(self, src: str, message: dict[str, Any]) -> None:
        state = self.state(message["seq"])
        if state.digest is not None and message["digest"] != state.digest:
            return
        state.commits.add(src)
        self.on_commit_quorum_check(message["seq"])

    def on_commit_quorum_check(self, seq: int) -> None:
        """committed(seq) := prepared + 2f + 1 commits (incl. own)."""
        state = self.state(seq)
        if state.committed or not state.prepared:
            return
        if len(state.commits) >= 2 * self.f + 1 or self.n == 1:
            state.committed = True
            self.try_execute()

    def try_execute(self) -> None:
        """Execute committed sequences strictly in order."""
        while True:
            state = self.states.get(self.last_executed + 1)
            if state is None or not state.committed or state.batch is None:
                return
            self.last_executed += 1
            state.executed = True
            self.exec_digest = sha256(self.exec_digest + (state.digest or b""))
            self.cluster.on_replica_executed(self, self.last_executed, state.batch)
            self._maybe_emit_checkpoint(self.last_executed)

    # -- view change -------------------------------------------------------------------

    def start_view_change(self, new_view: int, attempt: int = 0) -> None:
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        if self.node_id in votes:
            return
        votes.add(self.node_id)
        self._vc_cooldown_until = (
            self.cluster.bus.clock.now_ms()
            + self.cluster.view_change_timeout_ms
        )
        self._broadcast({"kind": VIEW_CHANGE, "view": new_view})
        self._arm_escalation(new_view, attempt)
        self._maybe_install(new_view)

    def _arm_escalation(self, new_view: int, attempt: int) -> None:
        """Re-arm the view-change timer with exponential backoff.

        One shot per request arrival is not live: when the primary of
        ``new_view`` is itself crashed or partitioned, the view change
        completes (or never gathers a quorum) and nothing ever fires
        again.  Each vote therefore schedules a stall check after
        ``view_change_timeout * 2^attempt``; if client requests are still
        stuck, the replica escalates past every dead primary until the
        attempt budget runs out (restarted by the next client retry).
        """
        if attempt >= self.cluster.max_view_change_attempts:
            return
        timeout = self.cluster.view_change_timeout_ms * (2 ** min(attempt, 10))
        self.cluster.bus.schedule(
            timeout, lambda: self._view_change_stalled(new_view, attempt)
        )

    def _view_change_stalled(self, new_view: int, attempt: int) -> None:
        if self.byzantine == BYZ_SILENT:
            return
        if not self._has_stuck_requests():
            return  # the view change (or a competing one) restored progress
        self.start_view_change(max(self.view, new_view) + 1, attempt + 1)

    def on_view_change(self, src: str, message: dict[str, Any]) -> None:
        new_view = message["view"]
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        votes.add(src)
        # echo our own vote once a quorum is forming (f+1 rule)
        if len(votes) >= self.f + 1 and self.node_id not in votes:
            votes.add(self.node_id)
            self._broadcast({"kind": VIEW_CHANGE, "view": new_view})
        self._maybe_install(new_view)

    def _maybe_install(self, new_view: int) -> None:
        votes = self.view_change_votes.get(new_view, set())
        if len(votes) >= 2 * self.f + 1 and new_view > self.view:
            self.view = new_view
            self._vc_cooldown_until = (
                self.cluster.bus.clock.now_ms()
                + self.cluster.view_change_timeout_ms
            )
            self.view_change_votes = {
                view: votes
                for view, votes in self.view_change_votes.items()
                if view > new_view
            }
            self.cluster.on_view_installed(new_view)
            if self.is_primary:
                self.next_seq = max(self.next_seq, self.last_executed + 1,
                                    self.cluster.max_seq_seen() + 1)
                self._broadcast({"kind": NEW_VIEW, "view": new_view})
                reproposed = self._repropose_in_flight()
                self.cluster.reassign_pending(self, exclude=reproposed)

    def _repropose_in_flight(self) -> set[bytes]:
        """New-primary duty: re-run every undecided sequence number.

        Sequences the crashed primary proposed but never drove to commit
        would stall execution forever (replicas execute strictly in
        order).  The new primary re-proposes the batch it saw for each
        such sequence, and fills sequences whose content it never
        received with an explicit no-op batch - the classic new-view
        null request.  Returns the hashes of every re-proposed
        transaction so pending reassignment skips them.
        """
        reproposed: set[bytes] = set()
        for seq in range(self.last_executed + 1, self.next_seq):
            state = self.states.get(seq)
            if state is not None and state.executed:
                continue
            batch = state.batch if state is not None and state.batch else []
            for tx in batch:
                reproposed.add(tx.hash())
            self.propose_at(seq, batch)
        return reproposed

    def on_new_view(self, src: str, message: dict[str, Any]) -> None:
        new_view = message["view"]
        if new_view > self.view and src == f"pbft-{self.primary_of(new_view)}":
            self.view = new_view

    # -- checkpoints -------------------------------------------------------------------

    def _maybe_emit_checkpoint(self, seq: int) -> None:
        if (seq + 1) % self.cluster.checkpoint_interval != 0:
            return
        message = {
            "kind": CHECKPOINT,
            "seq": seq,
            "digest": self._maybe_corrupt(self.exec_digest),
        }
        self._broadcast(message)
        self._record_checkpoint_vote(self.node_id, seq, self.exec_digest)

    def on_checkpoint(self, src: str, message: dict[str, Any]) -> None:
        self._record_checkpoint_vote(src, message["seq"], message["digest"])

    def _record_checkpoint_vote(self, voter: str, seq: int, digest: bytes) -> None:
        stable = self.stable_checkpoint
        if stable is not None and seq <= stable.seq:
            return
        votes = self.checkpoint_votes.setdefault((seq, digest), set())
        votes.add(voter)
        if len(votes) >= 2 * self.f + 1 or self.n == 1:
            self._stabilize_checkpoint(
                Checkpoint(seq=seq, digest=digest, votes=tuple(sorted(votes)))
            )
        elif seq > self.last_executed and len(votes) >= self.f + 1:
            # f+1 replicas vouch for a prefix we have not executed: we are
            # behind the live protocol - fetch the certified state
            self.request_state_transfer()

    def _stabilize_checkpoint(self, checkpoint: Checkpoint) -> None:
        """A 2f+1 quorum certified ``checkpoint``: adopt it and GC."""
        stable = self.stable_checkpoint
        if stable is not None and checkpoint.seq <= stable.seq:
            return
        self.stable_checkpoint = checkpoint
        # garbage-collect per-sequence state and votes the proof covers
        self.states = {
            seq: state for seq, state in self.states.items()
            if seq > checkpoint.seq
        }
        self.checkpoint_votes = {
            key: votes for key, votes in self.checkpoint_votes.items()
            if key[0] > checkpoint.seq
        }
        self.cluster.on_checkpoint_stable(checkpoint)
        if checkpoint.seq > self.last_executed:
            # certified past our execution horizon: the quorum proves at
            # least f+1 honest replicas executed the whole prefix, so we
            # adopt the certificate directly (no re-execution) and only
            # fetch the committed tail beyond it from peers
            self.sequences_skipped += checkpoint.seq - self.last_executed
            self.last_executed = checkpoint.seq
            self.exec_digest = checkpoint.digest
            self.state_manifest = {
                s: d for s, d in self.state_manifest.items()
                if s > checkpoint.seq
            }
            self.cluster.stats.state_transfers += 1
            self.request_state_transfer()
            self.try_execute()  # sequences past the jump may be committed

    # -- state transfer ----------------------------------------------------------------

    def request_state_transfer(self) -> None:
        """Broadcast STATE-REQ asking peers for a certified checkpoint.

        Rate-limited to one outstanding request per timeout window so a
        badly lagging replica does not flood the cluster while responses
        are in flight.
        """
        if self.byzantine == BYZ_SILENT:
            return
        now = self.cluster.bus.clock.now_ms()
        if now < self._state_req_cooldown_until:
            return
        self._state_req_cooldown_until = now + self.cluster.request_timeout_ms
        self._broadcast({"kind": STATE_REQ, "have": self.last_executed})

    def on_state_req(self, src: str, message: dict[str, Any]) -> None:
        have = message["have"]
        if self.last_executed <= have:
            return  # nothing the requester does not already have
        checkpoint = self.stable_checkpoint
        tail_from = max(
            have, checkpoint.seq if checkpoint is not None else -1
        ) + 1
        tail: list[tuple[int, list[Transaction]]] = []
        for seq in range(tail_from, self.last_executed + 1):
            state = self.states.get(seq)
            if state is None or not state.executed or state.batch is None:
                break  # only a contiguous committed prefix is transferable
            tail.append((seq, state.batch))
        response: dict[str, Any] = {"kind": STATE_RESP}
        if len(tail) > self.cluster.state_tail_limit:
            # the requester is too far behind for an inline tail: hand it
            # the digest manifest instead and let the payloads travel over
            # the gossip mesh; the manifest pins what it may accept
            response["manifest"] = [
                (seq, self.states[seq].digest) for seq, _batch in tail
            ]
        elif tail:
            response["tail"] = tail
        if checkpoint is not None and checkpoint.seq > have:
            response["checkpoint"] = {
                "seq": checkpoint.seq,
                "digest": checkpoint.digest,
                "votes": list(checkpoint.votes),
            }
        if len(response) == 1:
            return  # nothing but the kind marker - no useful payload
        self.cluster.stats.messages += 1
        self.cluster.bus.send(self.node_id, src, response)

    def on_state_resp(self, src: str, message: dict[str, Any]) -> None:
        progressed = False
        proof = message.get("checkpoint")
        if proof is not None and self._install_checkpoint(proof):
            progressed = True
        manifest = message.get("manifest")
        if manifest:
            fresh = False
            for seq, digest in manifest:
                if seq > self.last_executed and seq not in self.state_manifest:
                    self.state_manifest[seq] = digest
                    fresh = True
            if fresh:
                self.cluster.stats.bulk_transfers += 1
        for seq, batch in message.get("tail", ()):
            if seq != self.last_executed + 1:
                continue  # stale, duplicated, or out-of-order tail entry
            digest = _batch_digest(batch)
            expected = self.state_manifest.get(seq)
            if expected is not None and digest != expected:
                continue  # does not match the certified manifest digest
            state = self.state(seq)
            state.batch = batch
            state.digest = digest
            state.prepared = True
            state.committed = True
            state.executed = True
            self.last_executed = seq
            self.state_manifest.pop(seq, None)
            self.exec_digest = sha256(self.exec_digest + state.digest)
            self.cluster.on_replica_executed(self, seq, batch)
            self._maybe_emit_checkpoint(seq)
            progressed = True
        if progressed:
            self.cluster.stats.state_transfers += 1
            # sequences committed while we caught up may now be runnable
            self.try_execute()

    def _install_checkpoint(self, proof: dict[str, Any]) -> bool:
        """Adopt a transferred checkpoint certificate; True on a jump.

        The certificate must carry 2f+1 distinct replica votes (the same
        trust base as NEW-VIEW in this simulation - vote sets stand in
        for signatures).  Installing jumps ``last_executed`` straight to
        the checkpoint without re-running the three-phase protocol for
        any covered sequence.
        """
        seq, digest = proof["seq"], proof["digest"]
        voters = {
            voter for voter in proof.get("votes", ())
            if isinstance(voter, str) and voter.startswith("pbft-")
        }
        if len(voters) < 2 * self.f + 1 and self.n > 1:
            return False  # not a valid certificate - refuse the jump
        if seq <= self.last_executed:
            return False  # we already executed past it
        self.sequences_skipped += seq - self.last_executed
        self.last_executed = seq
        self.exec_digest = digest
        self.states = {s: st for s, st in self.states.items() if s > seq}
        self.state_manifest = {
            s: d for s, d in self.state_manifest.items() if s > seq
        }
        checkpoint = Checkpoint(seq=seq, digest=digest,
                                votes=tuple(sorted(voters)))
        self.stable_checkpoint = checkpoint
        self.checkpoint_votes = {
            key: votes for key, votes in self.checkpoint_votes.items()
            if key[0] > seq
        }
        return True


class PBFTCluster(ConsensusEngine):
    """A PBFT replica group exposed through the plug-in interface."""

    def __init__(
        self,
        bus: MessageBus,
        n: int = 4,
        batch_txs: int = 100,
        timeout_ms: float = 100.0,
        request_timeout_ms: float = 2_000.0,
        submit_latency_ms: float = 1.0,
        checkpoint_interval: int = 32,
        view_change_timeout_ms: Optional[float] = None,
        max_view_change_attempts: int = 8,
        state_tail_limit: int = 64,
    ) -> None:
        super().__init__()
        if n < 1:
            raise ConsensusError("PBFT needs at least one replica")
        if checkpoint_interval < 1:
            raise ConsensusError("checkpoint_interval must be positive")
        if state_tail_limit < 1:
            raise ConsensusError("state_tail_limit must be positive")
        self.bus = bus
        self.n = n
        self.f = (n - 1) // 3
        self.request_timeout_ms = request_timeout_ms
        #: base of the exponential view-change escalation timers
        self.view_change_timeout_ms = (
            request_timeout_ms if view_change_timeout_ms is None
            else view_change_timeout_ms
        )
        self.max_view_change_attempts = max_view_change_attempts
        self.checkpoint_interval = checkpoint_interval
        #: longest committed tail a STATE-RESP ships inline; beyond this
        #: the responder sends a digest manifest and the payloads move in
        #: bulk over the gossip mesh
        self.state_tail_limit = state_tail_limit
        self._submit_latency = submit_latency_ms
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self.replicas = [_Replica(self, i) for i in range(n)]
        self.init_client_plumbing(bus)
        self._executed_digests: set[bytes] = set()
        #: hashes appended to the primary buffer or proposed - duplicates
        #: (retries and re-broadcast requests) are not buffered again
        self._in_pipeline: set[bytes] = set()
        #: executions per (seq, batch digest) - keying by digest stops a
        #: replica fed a corrupted state transfer from completing an f+1
        #: delivery quorum for a batch honest replicas never executed
        self._exec_counts: dict[tuple[int, bytes], int] = {}
        self._delivered: set[int] = set()
        self._replies: dict[bytes, ReplyCallback] = {}
        #: views / checkpoint seqs already counted in the stats
        self._views_installed: set[int] = set()
        self._stable_seqs: set[int] = set()

    # -- fault injection -----------------------------------------------------

    def make_byzantine(self, index: int, mode: str = BYZ_SILENT) -> None:
        """Turn replica ``index`` Byzantine (``silent`` or ``equivocate``)."""
        if mode not in (BYZ_SILENT, BYZ_EQUIVOCATE):
            raise ConsensusError(f"unknown Byzantine mode {mode!r}")
        self.replicas[index].byzantine = mode

    def heal_byzantine(self, index: int) -> None:
        """Restore replica ``index`` to honest behaviour (mid-run toggle)."""
        self.replicas[index].byzantine = None

    def crash(self, index: int) -> None:
        """Crash-stop a replica (drops all its traffic)."""
        self.bus.fail(f"pbft-{index}")
        self.replicas[index].byzantine = BYZ_SILENT

    def restart(self, index: int) -> None:
        """Bring a crashed replica back; it rejoins the live view on the
        next pre-prepare it receives from that view's primary, and
        immediately asks peers for a certified checkpoint so a long
        outage is recovered by state transfer, not by re-proposals."""
        self.bus.heal(f"pbft-{index}")
        replica = self.replicas[index]
        replica.byzantine = None
        replica._state_req_cooldown_until = 0.0
        self.bus.schedule(0.0, replica.request_state_transfer)

    def wipe(self, index: int) -> None:
        """Erase replica ``index``'s in-memory protocol state.

        Models a process restart that lost everything PBFT keeps in RAM:
        view, sequence counters, per-sequence vote state, the execution
        digest and the stable checkpoint.  The durable chain (the SEBDB
        node's segment files and commit log) is NOT touched - pair this
        with :meth:`reseed_replica` to prove the prefix back from a
        persisted checkpoint certificate.
        """
        replica = self.replicas[index]
        replica.view = 0
        replica.next_seq = 0
        replica.last_executed = -1
        replica.states = {}
        replica.view_change_votes = {}
        replica.pending_requests = []
        replica.exec_digest = b"\x00" * 32
        replica.checkpoint_votes = {}
        replica.stable_checkpoint = None
        replica.sequences_skipped = 0
        replica.state_manifest = {}
        replica._state_req_cooldown_until = 0.0
        replica._vc_cooldown_until = 0.0

    def reseed_replica(self, index: int, proof: dict[str, Any]) -> bool:
        """Install a persisted checkpoint certificate into a wiped replica.

        ``proof`` is the ``{"seq", "digest", "votes"}`` mapping a SEBDB
        node recovers from its durable commit log (see
        :attr:`repro.node.FullNode.persisted_engine_checkpoint`).  The
        certificate is validated exactly like one arriving by state
        transfer - 2f+1 distinct replica votes - and on success the
        replica jumps its protocol state to the certified sequence
        without re-running the three-phase protocol.  Returns True when
        the jump happened.
        """
        return self.replicas[index]._install_checkpoint(proof)

    # -- submission -------------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        self.stats.submitted += 1
        status = self.admit_submission(
            tx, on_reply, self._ack_source(), self._submit_latency
        )
        if status == ADMIT_REPLAYED:
            # already committed; the current primary re-acked over its
            # (faultable, possibly dead) client link
            return
        if status == ADMIT_NEW and tx.dedup_key() is None and on_reply is not None:
            self._replies[tx.hash()] = on_reply
        # ADMIT_PENDING falls through and re-broadcasts the REQUEST - the
        # original may never have reached the primary, and the re-broadcast
        # re-arms the backups' progress timers

        def arrive() -> None:
            # the client broadcasts its request so backups can monitor progress
            for replica in self.replicas:
                self.bus.send("client", replica.node_id, {"kind": REQUEST, "tx": tx})

        self.bus.schedule(self._submit_latency, arrive)

    def flush(self) -> None:
        batch = self._buffer.take_all()
        if batch:
            self._propose([tx for tx, _ in batch])

    # -- primary-side batching ------------------------------------------------------

    def primary_buffer_append(self, replica: _Replica, tx: Transaction) -> None:
        digest = tx.hash()
        if digest in self._in_pipeline or digest in self._executed_digests:
            return  # a retry of a request already buffered, proposed or done
        self._in_pipeline.add(digest)
        self._buffer.append(tx, None)
        full = self._buffer.take_full()
        if full is not None:
            self._propose([t for t, _ in full], replica)
        elif len(self._buffer) == 1:
            epoch = self._buffer.epoch
            self.bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        if self._buffer.epoch == epoch and len(self._buffer):
            self._propose([t for t, _ in self._buffer.take_all()])

    def _propose(self, batch: list[Transaction], replica: Optional[_Replica] = None) -> None:
        if not batch:
            return
        for tx in batch:
            self._in_pipeline.add(tx.hash())
        primary = replica
        if primary is None or not primary.is_primary:
            view = max(r.view for r in self.replicas)
            primary = self.replicas[view % self.n]
        primary.propose(batch)

    def reassign_pending(
        self, new_primary: _Replica, exclude: frozenset[bytes] | set[bytes] = frozenset()
    ) -> None:
        """After a view change, the new primary re-proposes stuck requests.

        ``exclude`` holds hashes the new primary already re-proposed for
        in-flight sequences, so they are not proposed a second time.
        """
        stuck = []
        seen: set[bytes] = set()
        for tx, _ in new_primary.pending_requests:
            digest = tx.hash()
            if (digest in exclude or digest in seen
                    or digest in self._executed_digests):
                continue
            seen.add(digest)
            stuck.append(tx)
        new_primary.pending_requests = []
        if stuck:
            self._propose(stuck, new_primary)

    # -- execution plumbing --------------------------------------------------------------

    def max_seq_seen(self) -> int:
        seqs = [max(r.states) for r in self.replicas if r.states]
        horizon = max(seqs) if seqs else -1
        return max(horizon, max(r.last_executed for r in self.replicas))

    def was_executed(self, tx: Transaction) -> bool:
        return tx.hash() in self._executed_digests

    def _ack_source(self) -> str:
        """Bus id the cluster's client-facing acks originate from.

        Replies conceptually come from the replica the client talks to:
        the primary of the highest installed view.  If that replica is
        crashed or partitioned away from the client, its acks are lost on
        the wire - exactly the ambiguity the resilient client must
        tolerate.
        """
        view = max(replica.view for replica in self.replicas)
        return f"pbft-{view % self.n}"

    def on_view_installed(self, view: int) -> None:
        """First replica to install ``view`` counts it in the stats."""
        if view not in self._views_installed:
            self._views_installed.add(view)
            self.stats.view_changes += 1

    def on_checkpoint_stable(self, checkpoint: "Checkpoint") -> None:
        """First replica to certify a checkpoint publishes it outward."""
        if checkpoint.seq in self._stable_seqs:
            return
        self._stable_seqs.add(checkpoint.seq)
        self.stats.checkpoints += 1
        self._notify_checkpoint(checkpoint)

    def on_replica_executed(
        self, replica: _Replica, seq: int, batch: list[Transaction]
    ) -> None:
        """Called by each replica as it executes; drives delivery and replies."""
        key = (seq, _batch_digest(batch))
        count = self._exec_counts.get(key, 0) + 1
        self._exec_counts[key] = count
        # deliver to the SEBDB nodes once the batch is final (f+1 matching
        # executions guarantee at least one correct replica executed it)
        if count >= self.f + 1 and seq not in self._delivered:
            self._delivered.add(seq)
            # exactly-once delivery: a view change can re-propose a request
            # at a new sequence while the old one also survives, so filter
            # every transaction already delivered (cross-batch and within
            # this batch) before handing the rest to the SEBDB nodes
            fresh: list[Transaction] = []
            for tx in batch:
                digest = tx.hash()
                if digest in self._executed_digests:
                    continue
                self._executed_digests.add(digest)
                fresh.append(tx)
            if not fresh:
                return
            # the acks ride the executing replica's client link - lossy,
            # partitionable, and dead when that replica is
            self.finish_commit(
                [(tx, self._replies.pop(tx.hash(), None)) for tx in fresh],
                replica.node_id, self.bus.clock.now_ms(),
                self._submit_latency,
            )
