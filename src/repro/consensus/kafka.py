"""Kafka-style ordering service: the client-facing orderer facade.

Models the crash-fault-tolerant ordering pipeline the paper benchmarks in
Fig 7: clients publish transactions to a *transaction topic*; a packager
consumes the topic, cutting a block whenever either the batch size (200
txs) or the timeout (200 ms) is reached, and delivers the block to every
peer.

The packager being a single thread is what caps throughput ("it comes to
a threshold at 400 clients for a single thread is responsible for
packaging and appending block to disk") - the broker models it with an
explicit busy-until horizon: work requests queue behind one another, so
per-tx processing cost bounds sustained throughput, and queueing delay
shows up in client response times exactly as in the figure.

The broker side lives in :mod:`repro.consensus.broker`: one or more real
bus endpoints (``kafka-broker``, ``kafka-broker-1``, ...) forming a
replicated cluster with leader election and ISR-quorum replication, so
chaos schedules can crash the leader, partition followers, or drop and
duplicate any of the traffic.  This module is the thin orderer facade
clients talk to: it publishes submissions to the current leader (fanning
a *note* to every other broker so the cluster learns of demand even when
the leader is gone), tracks redirect replies to re-resolve leadership,
and dedups nonce-carrying retries through a :class:`SubmissionLedger` -
a retry of a committed transaction is re-acked, never re-ordered.
"""

from __future__ import annotations

from typing import Any, Optional

from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import ConsensusEngine, ReplyCallback
from .broker import (
    BROKER_ID,
    LEADER,
    NOT_LEADER,
    NOTE,
    ORDERER_ID,
    SUBMIT,
    BrokerCluster,
)

__all__ = ["BROKER_ID", "ORDERER_ID", "SUBMIT", "KafkaOrderer"]


class KafkaOrderer(ConsensusEngine):
    """Ordering service backed by a replicated broker cluster.

    With the default ``num_brokers=1`` this is the paper's single-broker
    pipeline, byte-for-byte: one bus endpoint, no election or replication
    traffic, the same serial-packager timing.  With more brokers the
    cluster elects a leader per epoch and the facade follows it through
    NOT_LEADER/LEADER redirects.
    """

    def __init__(
        self,
        bus: MessageBus,
        batch_txs: int = 200,
        timeout_ms: float = 200.0,
        submit_latency_ms: float = 1.0,
        per_tx_cost_ms: float = 0.25,
        per_block_cost_ms: float = 5.0,
        deliver_latency_ms: float = 1.0,
        broker_id: str = BROKER_ID,
        num_brokers: int = 1,
        election_timeout_ms: float = 300.0,
        max_election_attempts: int = 8,
    ) -> None:
        super().__init__()
        self._bus = bus
        self._submit_latency = submit_latency_ms
        self.broker_id = broker_id
        self.init_client_plumbing(bus)
        self.cluster = BrokerCluster(
            self, bus,
            num_brokers=num_brokers,
            batch_txs=batch_txs,
            timeout_ms=timeout_ms,
            submit_latency_ms=submit_latency_ms,
            per_tx_cost_ms=per_tx_cost_ms,
            per_block_cost_ms=per_block_cost_ms,
            deliver_latency_ms=deliver_latency_ms,
            broker_id=broker_id,
            election_timeout_ms=election_timeout_ms,
            max_election_attempts=max_election_attempts,
        )
        #: where the next submission is published; redirects update it
        self._leader_hint = broker_id
        self._hint_epoch = 0
        if num_brokers > 1:
            # the facade's own endpoint only exists in clustered mode so
            # single-broker deployments keep the exact legacy topology
            bus.register(ORDERER_ID, self._on_meta)

    # -- cluster accessors --------------------------------------------------------

    @property
    def broker_ids(self) -> list[str]:
        return list(self.cluster.broker_ids)

    @property
    def leader_id(self) -> Optional[str]:
        """The live broker currently claiming leadership (None mid-election)."""
        leader = self.cluster.acting_leader()
        return None if leader is None else leader.node_id

    @property
    def leader_hint(self) -> str:
        return self._leader_hint

    def crash_broker(self, node_id: str) -> None:
        self.cluster.crash_broker(node_id)

    def restart_broker(self, node_id: str) -> None:
        self.cluster.restart_broker(node_id)

    # -- client side ----------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Publish a transaction to the leader's topic (a lossy link!).

        In clustered mode every other broker receives a *note* carrying
        the same submission: notes are how followers detect a dead leader
        (unserved demand) and how a successor re-proposes submissions the
        deposed leader took down with it.
        """
        self.stats.submitted += 1
        note_id = self.cluster.next_note()
        hint = self._leader_hint
        self.stats.messages += 1
        self._bus.send(
            "client", hint,
            {"kind": SUBMIT, "tx": tx, "on_reply": on_reply, "note": note_id},
            delay_ms=self._submit_latency, fifo=True,
        )
        for other in self.broker_ids:
            if other == hint:
                continue
            self.stats.messages += 1
            self._bus.send(
                "client", other,
                {"kind": NOTE, "tx": tx, "on_reply": on_reply,
                 "note": note_id},
                delay_ms=self._submit_latency,
            )

    def flush(self) -> None:
        self.cluster.flush()

    # -- leader re-resolution -----------------------------------------------------

    def _on_meta(self, src: str, message: Any) -> None:
        """Track LEADER announcements and NOT_LEADER redirects."""
        if not isinstance(message, dict):
            return
        if message.get("kind") not in (LEADER, NOT_LEADER):
            return
        epoch = message.get("epoch")
        leader = message.get("leader")
        if not isinstance(epoch, int) or not isinstance(leader, str):
            return
        if leader not in self.cluster.broker_ids:
            return
        if epoch >= self._hint_epoch:
            self._hint_epoch = epoch
            self._leader_hint = leader
