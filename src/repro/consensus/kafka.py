"""Kafka-style ordering service.

Models the crash-fault-tolerant ordering pipeline the paper benchmarks in
Fig 7: clients publish transactions to a *transaction topic* on a single
broker; one packager thread consumes the topic, cutting a block whenever
either the batch size (200 txs) or the timeout (200 ms) is reached, and
delivers the block to every peer.

The packager being a single thread is what caps throughput ("it comes to
a threshold at 400 clients for a single thread is responsible for
packaging and appending block to disk") - we model it with an explicit
busy-until horizon: work requests queue behind one another, so per-tx
processing cost bounds sustained throughput, and queueing delay shows up
in client response times exactly as in the figure.
"""

from __future__ import annotations

from typing import Optional

from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import BatchBuffer, ConsensusEngine, ReplyCallback


class KafkaOrderer(ConsensusEngine):
    """Single-broker ordering service with a serial packager."""

    def __init__(
        self,
        bus: MessageBus,
        batch_txs: int = 200,
        timeout_ms: float = 200.0,
        submit_latency_ms: float = 1.0,
        per_tx_cost_ms: float = 0.25,
        per_block_cost_ms: float = 5.0,
        deliver_latency_ms: float = 1.0,
    ) -> None:
        super().__init__()
        self._bus = bus
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self._submit_latency = submit_latency_ms
        self._per_tx = per_tx_cost_ms
        self._per_block = per_block_cost_ms
        self._deliver_latency = deliver_latency_ms
        #: simulated time until which the single packager thread is busy
        self._busy_until = 0.0

    # -- client side ----------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Publish a transaction to the broker's topic."""
        self.stats.submitted += 1
        self.stats.messages += 1
        self._bus.schedule(self._submit_latency, lambda: self._broker_receive(tx, on_reply))

    def flush(self) -> None:
        self._cut(self._buffer.take_all())

    # -- broker side -------------------------------------------------------------

    def _broker_receive(
        self, tx: Transaction, on_reply: Optional[ReplyCallback]
    ) -> None:
        was_empty = len(self._buffer) == 0
        self._buffer.append(tx, on_reply)
        full = self._buffer.take_full()
        if full is not None:
            self._cut(full)
        elif was_empty:
            epoch = self._buffer.epoch
            self._bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        # only fire if the buffer has not been cut since the timer was armed
        if self._buffer.epoch == epoch and len(self._buffer):
            self._cut(self._buffer.take_all())

    def _cut(self, batch: list[tuple[Transaction, Optional[ReplyCallback]]]) -> None:
        """Queue the batch behind the single packager thread."""
        if not batch:
            return
        now = self._bus.clock.now_ms()
        work = self._per_block + self._per_tx * len(batch)
        start = max(now, self._busy_until)
        self._busy_until = start + work
        done_in = self._busy_until - now

        def finish() -> None:
            txs = [tx for tx, _ in batch]
            self.stats.messages += len(self.replica_ids)
            self._deliver(txs)
            commit_time = self._bus.clock.now_ms() + self._deliver_latency
            for _tx, on_reply in batch:
                if on_reply is not None:
                    self._bus.schedule(
                        self._deliver_latency,
                        (lambda cb: lambda: cb(commit_time))(on_reply),
                    )

        self._bus.schedule(done_in, finish)
