"""Kafka-style ordering service.

Models the crash-fault-tolerant ordering pipeline the paper benchmarks in
Fig 7: clients publish transactions to a *transaction topic* on a single
broker; one packager thread consumes the topic, cutting a block whenever
either the batch size (200 txs) or the timeout (200 ms) is reached, and
delivers the block to every peer.

The packager being a single thread is what caps throughput ("it comes to
a threshold at 400 clients for a single thread is responsible for
packaging and appending block to disk") - we model it with an explicit
busy-until horizon: work requests queue behind one another, so per-tx
processing cost bounds sustained throughput, and queueing delay shows up
in client response times exactly as in the figure.

The broker is a real bus endpoint (``kafka-broker``): submissions travel
over a faultable link, so chaos schedules can crash the broker's node,
partition it, or drop/duplicate the submit traffic.  Nonce-carrying
retries are deduplicated through a :class:`SubmissionLedger` - a retry of
a committed transaction is re-acked, never re-ordered.
"""

from __future__ import annotations

from typing import Any, Optional

from ..model.transaction import Transaction
from ..network.bus import MessageBus
from .base import ADMIT_NEW, BatchBuffer, ConsensusEngine, ReplyCallback

#: bus node id of the single broker (the crash target of chaos runs)
BROKER_ID = "kafka-broker"

SUBMIT = "kafka-submit"


class KafkaOrderer(ConsensusEngine):
    """Single-broker ordering service with a serial packager."""

    def __init__(
        self,
        bus: MessageBus,
        batch_txs: int = 200,
        timeout_ms: float = 200.0,
        submit_latency_ms: float = 1.0,
        per_tx_cost_ms: float = 0.25,
        per_block_cost_ms: float = 5.0,
        deliver_latency_ms: float = 1.0,
        broker_id: str = BROKER_ID,
    ) -> None:
        super().__init__()
        self._bus = bus
        self._buffer = BatchBuffer(batch_txs)
        self._timeout = timeout_ms
        self._submit_latency = submit_latency_ms
        self._per_tx = per_tx_cost_ms
        self._per_block = per_block_cost_ms
        self._deliver_latency = deliver_latency_ms
        self.broker_id = broker_id
        self.init_client_plumbing(bus)
        #: simulated time until which the single packager thread is busy
        self._busy_until = 0.0
        bus.register(broker_id, self._on_message)

    # -- client side ----------------------------------------------------------

    def submit(
        self, tx: Transaction, on_reply: Optional[ReplyCallback] = None
    ) -> None:
        """Publish a transaction to the broker's topic (a lossy link!)."""
        self.stats.submitted += 1
        self.stats.messages += 1
        self._bus.send(
            "client", self.broker_id,
            {"kind": SUBMIT, "tx": tx, "on_reply": on_reply},
            delay_ms=self._submit_latency, fifo=True,
        )

    def flush(self) -> None:
        self._cut(self._buffer.take_all())

    # -- broker side -------------------------------------------------------------

    def _on_message(self, src: str, message: Any) -> None:
        if isinstance(message, dict) and message.get("kind") == SUBMIT:
            self._broker_receive(message["tx"], message.get("on_reply"))

    def _broker_receive(
        self, tx: Transaction, on_reply: Optional[ReplyCallback]
    ) -> None:
        # a retry either queues behind the pending original or is re-acked
        # with the recorded commit time; the re-ack travels the broker->
        # client link and can be lost again - the retry loop is the net
        if self.admit_submission(
            tx, on_reply, self.broker_id, self._deliver_latency
        ) != ADMIT_NEW:
            return
        was_empty = len(self._buffer) == 0
        # nonce-carrying txs ack through the ledger; legacy ones keep the
        # callback attached to the buffer entry
        self._buffer.append(tx, None if tx.dedup_key() else on_reply)
        full = self._buffer.take_full()
        if full is not None:
            self._cut(full)
        elif was_empty:
            epoch = self._buffer.epoch
            self._bus.schedule(self._timeout, lambda: self._on_timeout(epoch))

    def _on_timeout(self, epoch: int) -> None:
        # only fire if the buffer has not been cut since the timer was armed
        if self._buffer.epoch == epoch and len(self._buffer):
            self._cut(self._buffer.take_all())

    def _cut(self, batch: list[tuple[Transaction, Optional[ReplyCallback]]]) -> None:
        """Queue the batch behind the single packager thread."""
        if not batch:
            return
        now = self._bus.clock.now_ms()
        work = self._per_block + self._per_tx * len(batch)
        start = max(now, self._busy_until)
        self._busy_until = start + work
        done_in = self._busy_until - now

        def finish() -> None:
            self.stats.messages += len(self.replica_ids)
            # acks are real broker->client messages: they drop while the
            # broker is crashed and on lossy links
            commit_time = self._bus.clock.now_ms() + self._deliver_latency
            self.finish_commit(batch, self.broker_id, commit_time,
                               self._deliver_latency)

        self._bus.schedule(done_in, finish)
