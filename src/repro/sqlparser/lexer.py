"""Tokenizer for the SEBDB SQL-like language.

The language covers the paper's statements: CREATE, INSERT, SELECT (with
joins, WHERE and time windows), TRACE, and GET BLOCK, plus ``?``
placeholders for parameterized execution (the benchmark queries Q1, Q4 and
Q7 are written with placeholders in Table II).
"""

from __future__ import annotations

import dataclasses
import enum

from ..common.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


KEYWORDS = {
    "create", "insert", "into", "values", "select", "from", "where",
    "and", "or", "not", "between", "on", "trace", "operator", "operation",
    "get", "block", "id", "tid", "ts", "window", "in", "as", "join",
    "true", "false", "null", "limit", "explain", "analyze",
    "count", "sum", "avg", "min", "max", "group", "order", "by",
    "asc", "desc", "distinct",
}

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),[].*"


@dataclasses.dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        if self.type is not ttype:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`ParseError` on junk."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", i))
            i += 1
            continue
        if ch in ("'", '"'):
            j = i + 1
            buf = []
            while j < n and text[j] != ch:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit is punctuation (qualifier)
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            ttype = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENT
            tokens.append(Token(ttype, word.lower() if ttype is TokenType.KEYWORD else word, i))
            i = j
            continue
        matched_op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched_op:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch == ";":
            i += 1  # statement terminator is optional noise
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
