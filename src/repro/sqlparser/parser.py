"""Recursive-descent parser for the SEBDB SQL-like language.

Supported statements (see Table II of the paper for the canonical forms)::

    CREATE <table> (<col> <type>, ...)
    INSERT INTO <table> [VALUES] (<v>, ...)
    SELECT <cols|*> FROM <t1> [, <t2> ON t1.c = t2.c]
        [WHERE <predicate>] [WINDOW [s, e]] [LIMIT n]
    TRACE [s, e] OPERATOR = <v> [,] [OPERATION = <v>]
    GET BLOCK ID|TID|TS = <v>

Tables may be qualified ``onchain.name`` / ``offchain.name`` (Q6).
Predicates are comparisons, BETWEEN, AND/OR.  Literals: numbers, quoted
strings, TRUE/FALSE/NULL, and ``?`` placeholders bound at execution.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ParseError
from .lexer import Token, TokenType, tokenize
from .nodes import (
    AGGREGATE_FUNCS,
    PLACEHOLDER,
    Aggregate,
    And,
    Between,
    BlockLookupKind,
    ColumnRef,
    Comparison,
    CompareOp,
    CreateTable,
    Explain,
    GetBlock,
    Insert,
    Or,
    OrderBy,
    Predicate,
    Select,
    Statement,
    TableRef,
    TimeWindow,
    Trace,
)


def parse(text: str) -> Statement:
    """Parse one statement; raises :class:`ParseError` on bad input."""
    return _Parser(tokenize(text)).parse_statement()


def bind(statement: Statement, params: tuple[Any, ...]) -> Statement:
    """Substitute ``?`` placeholders left-to-right with ``params``."""
    binder = _Binder(params)
    bound = binder.bind(statement)
    if binder.remaining():
        raise ParseError(
            f"{binder.remaining()} unused bind parameter(s) "
            f"(statement has {binder.consumed} placeholder(s))"
        )
    return bound


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if not token.matches(TokenType.KEYWORD, word):
            raise ParseError(f"expected {word.upper()}, got {token.value!r}", token.position)
        return token

    def _expect_punct(self, char: str) -> Token:
        token = self._next()
        if not token.matches(TokenType.PUNCT, char):
            raise ParseError(f"expected {char!r}, got {token.value!r}", token.position)
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches(TokenType.KEYWORD, word):
            self._next()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        if self._peek().matches(TokenType.PUNCT, char):
            self._next()
            return True
        return False

    def _ident(self, what: str = "identifier") -> str:
        token = self._next()
        # unreserved keywords double as identifiers where unambiguous
        if token.type in (TokenType.IDENT, TokenType.KEYWORD) and token.value:
            return token.value.lower()
        raise ParseError(f"expected {what}, got {token.value!r}", token.position)

    # -- entry point ----------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "explain"):
            stmt: Statement = self._parse_explain()
            tail = self._peek()
            if tail.type is not TokenType.EOF:
                raise ParseError(
                    f"unexpected trailing input {tail.value!r}", tail.position
                )
            return stmt
        if token.matches(TokenType.KEYWORD, "create"):
            stmt: Statement = self._parse_create()
        elif token.matches(TokenType.KEYWORD, "insert"):
            stmt = self._parse_insert()
        elif token.matches(TokenType.KEYWORD, "select"):
            stmt = self._parse_select()
        elif token.matches(TokenType.KEYWORD, "trace"):
            stmt = self._parse_trace()
        elif token.matches(TokenType.KEYWORD, "get"):
            stmt = self._parse_get_block()
        else:
            raise ParseError(
                f"expected a statement keyword, got {token.value!r}", token.position
            )
        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input {tail.value!r}", tail.position)
        return stmt

    # -- statements -------------------------------------------------------------

    def _parse_explain(self) -> Explain:
        token = self._expect_keyword("explain")
        analyze = self._accept_keyword("analyze")
        inner = self._peek()
        if inner.matches(TokenType.KEYWORD, "select"):
            stmt: Statement = self._parse_select()
        elif inner.matches(TokenType.KEYWORD, "trace"):
            stmt = self._parse_trace()
        elif inner.matches(TokenType.KEYWORD, "get"):
            stmt = self._parse_get_block()
        elif inner.matches(TokenType.KEYWORD, "explain"):
            raise ParseError("EXPLAIN cannot be nested", inner.position)
        else:
            raise ParseError(
                "EXPLAIN expects a read statement (SELECT, TRACE or GET BLOCK)",
                token.position,
            )
        return Explain(statement=stmt, analyze=analyze)

    def _parse_create(self) -> CreateTable:
        self._expect_keyword("create")
        self._accept_keyword("block")  # tolerate CREATE TABLE-style noise
        table = self._ident("table name")
        if table == "table":  # CREATE TABLE t (...)
            table = self._ident("table name")
        self._expect_punct("(")
        columns: list[tuple[str, str]] = []
        while True:
            name = self._ident("column name")
            type_name = self._ident("column type")
            columns.append((name, type_name))
            if self._accept_punct(")"):
                break
            self._expect_punct(",")
        return CreateTable(table=table, columns=tuple(columns))

    def _parse_insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._ident("table name")
        self._accept_keyword("values")
        self._expect_punct("(")
        values: list[Any] = []
        while True:
            values.append(self._literal())
            if self._accept_punct(")"):
                break
            self._expect_punct(",")
        return Insert(table=table, values=tuple(values))

    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        projection: list[Any] = []
        if not self._accept_punct("*"):
            while True:
                projection.append(self._projection_item())
                if not self._accept_punct(","):
                    break
        self._expect_keyword("from")
        tables = [self._table_ref()]
        join_on: Optional[tuple[ColumnRef, ColumnRef]] = None
        if self._accept_punct(",") or self._accept_keyword("join"):
            tables.append(self._table_ref())
            self._expect_keyword("on")
            left = self._column_ref()
            op = self._next()
            if not op.matches(TokenType.OPERATOR, "="):
                raise ParseError("join condition must be an equi-join", op.position)
            right = self._column_ref()
            join_on = (left, right)
        where: Optional[Predicate] = None
        if self._accept_keyword("where"):
            where = self._predicate()
        group_by = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._column_ref()
        order_by = None
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            column = self._column_ref()
            descending = False
            if self._accept_keyword("desc"):
                descending = True
            else:
                self._accept_keyword("asc")
            order_by = OrderBy(column=column, descending=descending)
        window = None
        if self._accept_keyword("window") or self._peek().matches(TokenType.PUNCT, "["):
            window = self._window()
        limit = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.type is not TokenType.NUMBER:
                raise ParseError("LIMIT expects a number", token.position)
            limit = int(token.value)
        return Select(
            projection=tuple(projection),
            tables=tuple(tables),
            join_on=join_on,
            where=where,
            group_by=group_by,
            order_by=order_by,
            window=window,
            limit=limit,
            distinct=distinct,
        )

    def _projection_item(self) -> Any:
        """A projected column or an aggregate call."""
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in AGGREGATE_FUNCS:
            # only an aggregate when followed by '(' - 'min' etc. remain
            # usable as plain column names otherwise
            if self._tokens[self._pos + 1].matches(TokenType.PUNCT, "("):
                func = self._next().value
                self._expect_punct("(")
                if self._accept_punct("*"):
                    self._expect_punct(")")
                    if func != "count":
                        raise ParseError(
                            f"{func.upper()}(*) is not defined", token.position
                        )
                    return Aggregate(func=func, column=None)
                column = self._column_ref()
                self._expect_punct(")")
                return Aggregate(func=func, column=column)
        return self._column_ref()

    def _parse_trace(self) -> Trace:
        self._expect_keyword("trace")
        window = None
        if self._peek().matches(TokenType.PUNCT, "["):
            window = self._window()
        operator = None
        operation = None
        while True:
            if self._accept_keyword("operator"):
                self._expect_operator_eq()
                operator = self._literal()
            elif self._accept_keyword("operation"):
                self._expect_operator_eq()
                operation = self._literal()
            else:
                break
            if not self._accept_punct(","):
                # allow bare juxtaposition: OPERATOR = x OPERATION = y
                continue
        if operator is None and operation is None:
            raise ParseError("TRACE needs OPERATOR and/or OPERATION")
        return Trace(operator=operator, operation=operation, window=window)

    def _parse_get_block(self) -> GetBlock:
        self._expect_keyword("get")
        self._expect_keyword("block")
        token = self._next()
        kinds = {
            "id": BlockLookupKind.BY_ID,
            "tid": BlockLookupKind.BY_TID,
            "ts": BlockLookupKind.BY_TS,
        }
        if token.type is not TokenType.KEYWORD or token.value not in kinds:
            raise ParseError("GET BLOCK expects ID, TID or TS", token.position)
        self._expect_operator_eq()
        return GetBlock(kind=kinds[token.value], value=self._literal())

    # -- fragments ---------------------------------------------------------------

    def _expect_operator_eq(self) -> None:
        token = self._next()
        if not token.matches(TokenType.OPERATOR, "="):
            raise ParseError(f"expected '=', got {token.value!r}", token.position)

    def _window(self) -> TimeWindow:
        self._expect_punct("[")
        start = None if self._peek().matches(TokenType.PUNCT, ",") else self._literal()
        self._expect_punct(",")
        end = None if self._peek().matches(TokenType.PUNCT, "]") else self._literal()
        self._expect_punct("]")
        return TimeWindow(start=start, end=end)

    def _table_ref(self) -> TableRef:
        first = self._ident("table name")
        source = "onchain"
        name = first
        if first in ("onchain", "offchain") and self._accept_punct("."):
            source = first
            name = self._ident("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._ident("alias")
        return TableRef(name=name, source=source, alias=alias)

    def _column_ref(self) -> ColumnRef:
        first = self._ident("column name")
        if not self._accept_punct("."):
            return ColumnRef(column=first)
        second = self._ident("column name")
        if first in ("onchain", "offchain"):
            if self._accept_punct("."):
                third = self._ident("column name")
                return ColumnRef(column=third, table=second, source=first)
            return ColumnRef(column=second, source=first)
        if self._accept_punct("."):
            third = self._ident("column name")
            return ColumnRef(column=third, table=second, source=first)
        return ColumnRef(column=second, table=first)

    def _literal(self) -> Any:
        token = self._next()
        if token.type is TokenType.PLACEHOLDER:
            return PLACEHOLDER
        if token.type is TokenType.STRING:
            return token.value
        if token.type is TokenType.NUMBER:
            text = token.value
            return float(text) if "." in text else int(text)
        if token.type is TokenType.KEYWORD:
            if token.value == "true":
                return True
            if token.value == "false":
                return False
            if token.value == "null":
                return None
        raise ParseError(f"expected a literal, got {token.value!r}", token.position)

    # -- predicates ---------------------------------------------------------------

    def _predicate(self) -> Predicate:
        return self._or_expr()

    def _or_expr(self) -> Predicate:
        parts = [self._and_expr()]
        while self._accept_keyword("or"):
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else Or(parts=tuple(parts))

    def _and_expr(self) -> Predicate:
        parts = [self._atom()]
        while self._accept_keyword("and"):
            parts.append(self._atom())
        return parts[0] if len(parts) == 1 else And(parts=tuple(parts))

    def _atom(self) -> Predicate:
        if self._accept_punct("("):
            inner = self._predicate()
            self._expect_punct(")")
            return inner
        column = self._column_ref()
        if self._accept_keyword("between"):
            low = self._literal()
            self._expect_keyword("and")
            high = self._literal()
            return Between(column=column, low=low, high=high)
        token = self._next()
        ops = {
            "=": CompareOp.EQ, "<>": CompareOp.NE, "!=": CompareOp.NE,
            "<": CompareOp.LT, "<=": CompareOp.LE,
            ">": CompareOp.GT, ">=": CompareOp.GE,
        }
        if token.type is not TokenType.OPERATOR or token.value not in ops:
            raise ParseError(f"expected comparison operator, got {token.value!r}", token.position)
        return Comparison(column=column, op=ops[token.value], value=self._literal())


class _Binder:
    """Replaces placeholders depth-first, left-to-right."""

    def __init__(self, params: tuple[Any, ...]) -> None:
        self._params = list(params)
        self.consumed = 0

    def remaining(self) -> int:
        return len(self._params)

    def _take(self) -> Any:
        if not self._params:
            raise ParseError("not enough bind parameters for the placeholders")
        self.consumed += 1
        return self._params.pop(0)

    def value(self, v: Any) -> Any:
        return self._take() if v is PLACEHOLDER else v

    def bind(self, node: Any) -> Any:
        if node is PLACEHOLDER:
            return self._take()
        if isinstance(node, Explain):
            return Explain(statement=self.bind(node.statement), analyze=node.analyze)
        if isinstance(node, Insert):
            return Insert(node.table, tuple(self.value(v) for v in node.values))
        if isinstance(node, Select):
            return Select(
                projection=node.projection,
                tables=node.tables,
                join_on=node.join_on,
                where=self.bind(node.where) if node.where else None,
                group_by=node.group_by,
                order_by=node.order_by,
                window=self.bind(node.window) if node.window else None,
                limit=node.limit,
                distinct=node.distinct,
            )
        if isinstance(node, Trace):
            # bind in the statement's textual order: window precedes the
            # OPERATOR/OPERATION clauses in TRACE [s, e] OPERATOR = ...
            window = self.bind(node.window) if node.window else None
            return Trace(
                operator=self.value(node.operator),
                operation=self.value(node.operation),
                window=window,
            )
        if isinstance(node, GetBlock):
            return GetBlock(node.kind, self.value(node.value))
        if isinstance(node, TimeWindow):
            return TimeWindow(self.value(node.start), self.value(node.end))
        if isinstance(node, Comparison):
            return Comparison(node.column, node.op, self.value(node.value))
        if isinstance(node, Between):
            return Between(node.column, self.value(node.low), self.value(node.high))
        if isinstance(node, And):
            return And(tuple(self.bind(p) for p in node.parts))
        if isinstance(node, Or):
            return Or(tuple(self.bind(p) for p in node.parts))
        return node
