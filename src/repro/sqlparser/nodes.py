"""AST nodes of the SQL-like language.

One dataclass per statement kind, plus a small predicate algebra.  The
planner (:mod:`repro.query.plan`) consumes these directly.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Optional, Union


class Placeholder:
    """A ``?`` awaiting a bind parameter."""

    _instance: Optional["Placeholder"] = None

    def __new__(cls) -> "Placeholder":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


PLACEHOLDER = Placeholder()

Value = Any  # literal, or PLACEHOLDER before binding


# -- predicates ---------------------------------------------------------------


class CompareOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if self is CompareOp.LT:
            return left < right
        if self is CompareOp.LE:
            return left <= right
        if self is CompareOp.GT:
            return left > right
        return left >= right


@dataclasses.dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference, e.g. ``transfer.amount``."""

    column: str
    table: Optional[str] = None
    source: Optional[str] = None  # "onchain" / "offchain" / None

    def __str__(self) -> str:
        parts = [p for p in (self.source, self.table, self.column) if p]
        return ".".join(parts)


@dataclasses.dataclass(frozen=True)
class Comparison:
    column: ColumnRef
    op: CompareOp
    value: Value


@dataclasses.dataclass(frozen=True)
class Between:
    column: ColumnRef
    low: Value
    high: Value


@dataclasses.dataclass(frozen=True)
class And:
    parts: tuple["Predicate", ...]


@dataclasses.dataclass(frozen=True)
class Or:
    parts: tuple["Predicate", ...]


Predicate = Union[Comparison, Between, And, Or]


def predicate_text(predicate: Optional[Predicate]) -> str:
    """Render a predicate tree back to compact SQL-ish text (EXPLAIN)."""
    if predicate is None:
        return ""
    if isinstance(predicate, Comparison):
        return f"{predicate.column} {predicate.op.value} {predicate.value!r}"
    if isinstance(predicate, Between):
        return (f"{predicate.column} BETWEEN {predicate.low!r} "
                f"AND {predicate.high!r}")
    if isinstance(predicate, And):
        return " AND ".join(
            f"({predicate_text(p)})" if isinstance(p, Or) else predicate_text(p)
            for p in predicate.parts
        )
    if isinstance(predicate, Or):
        return " OR ".join(predicate_text(p) for p in predicate.parts)
    return repr(predicate)


def conjuncts(predicate: Optional[Predicate]) -> list[Predicate]:
    """Flatten a conjunctive predicate into its atoms.

    Returns ``[predicate]`` unchanged for OR trees (the planner then falls
    back to filter-after-scan for those).
    """
    if predicate is None:
        return []
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(conjuncts(part))
        return out
    return [predicate]


# -- statements ----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TimeWindow:
    """Inclusive [start, end] window on block/transaction timestamps."""

    start: Value = None
    end: Value = None

    @property
    def is_open(self) -> bool:
        return self.start is None and self.end is None


@dataclasses.dataclass(frozen=True)
class TableRef:
    """A table in FROM: name plus on-/off-chain qualifier."""

    name: str
    source: str = "onchain"  # "onchain" | "offchain"
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """An aggregate projection item, e.g. ``SUM(amount)`` or ``COUNT(*)``.

    ``column`` is ``None`` for ``COUNT(*)``.
    """

    func: str
    column: Optional[ColumnRef] = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.column is None and self.func != "count":
            raise ValueError(f"{self.func.upper()} requires a column")

    @property
    def label(self) -> str:
        inner = str(self.column) if self.column else "*"
        return f"{self.func}({inner})"


@dataclasses.dataclass(frozen=True)
class OrderBy:
    """ORDER BY <column> [ASC|DESC]."""

    column: ColumnRef
    descending: bool = False


ProjectionItem = Union[ColumnRef, Aggregate]


@dataclasses.dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, str], ...]  # (name, type-name)


@dataclasses.dataclass(frozen=True)
class Insert:
    table: str
    values: tuple[Value, ...]


@dataclasses.dataclass(frozen=True)
class Select:
    """SELECT with optional join, aggregates, grouping and time window."""

    projection: tuple[ProjectionItem, ...]  # empty tuple means *
    tables: tuple[TableRef, ...]
    join_on: Optional[tuple[ColumnRef, ColumnRef]] = None
    where: Optional[Predicate] = None
    group_by: Optional[ColumnRef] = None
    order_by: Optional[OrderBy] = None
    window: Optional[TimeWindow] = None
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def aggregates(self) -> tuple[Aggregate, ...]:
        return tuple(p for p in self.projection if isinstance(p, Aggregate))

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(p, Aggregate) for p in self.projection)


@dataclasses.dataclass(frozen=True)
class Trace:
    """TRACE [start, end] OPERATOR = x, OPERATION = y (either optional)."""

    operator: Value = None
    operation: Value = None
    window: Optional[TimeWindow] = None


class BlockLookupKind(enum.Enum):
    BY_ID = "id"
    BY_TID = "tid"
    BY_TS = "ts"


@dataclasses.dataclass(frozen=True)
class GetBlock:
    kind: BlockLookupKind
    value: Value


@dataclasses.dataclass(frozen=True)
class Explain:
    """EXPLAIN [ANALYZE] <read statement>.

    Plain EXPLAIN renders the physical plan tree with the planner's
    estimates; ANALYZE executes the statement and annotates every
    operator with its observed rows, I/O and timings.
    """

    statement: "Statement"
    analyze: bool = False


Statement = Union[CreateTable, Insert, Select, Trace, GetBlock, Explain]
