"""SEBDB: Semantics Empowered BlockChain DataBase (ICDE 2019) reproduction.

A consortium blockchain database that models on-chain transactions as
relations, speaks a SQL-like language (CREATE / INSERT / SELECT / TRACE /
JOIN / GET BLOCK), indexes blocks with block-level, table-level and layered
indexes, joins on-chain data with an off-chain RDBMS, and serves *verifiable*
query results to thin clients via authenticated layered indexes (ALI).

Quickstart::

    from repro import SebdbNetwork

    net = SebdbNetwork.single_node()
    net.execute("CREATE donate (donor string, project string, amount decimal)")
    net.execute("INSERT INTO donate VALUES ('Jack', 'Education', 100.0)")
    net.commit()                       # run consensus, seal a block
    rows = net.execute("SELECT * FROM donate WHERE donor = 'Jack'")
"""

__version__ = "1.0.0"

from .client.submitter import ResilientSubmitter
from .client.thin import ThinClient
from .common.config import SebdbConfig
from .common.errors import SebdbError, VerificationError
from .faults import ChaosController, FaultSchedule, InvariantChecker
from .model.schema import TableSchema
from .node.fullnode import FullNode
from .node.network import SebdbNetwork
from .offchain.adapter import OffChainDatabase

__all__ = [
    "ChaosController",
    "FaultSchedule",
    "FullNode",
    "InvariantChecker",
    "OffChainDatabase",
    "ResilientSubmitter",
    "SebdbConfig",
    "SebdbError",
    "SebdbNetwork",
    "TableSchema",
    "ThinClient",
    "VerificationError",
    "__version__",
]
