"""Thin clients (section VI).

A thin client stores only block headers - like an SPV node - and verifies
query answers from untrusted full nodes with the two-phase protocol:

Phase 1: send the query to a randomly chosen full node, receive a
:class:`QueryVO` (records + MB-tree range proofs + snapshot height ``h``).

Phase 2: send (query, h) to ``n`` randomly chosen *auxiliary* full nodes;
each returns the digest of the MB-roots the query must visit at height
``h``.  Once ``m`` identical digests arrive, reconstruct the roots from
the VO, hash them, and compare.  A mismatch raises
:class:`~repro.common.errors.VerificationError`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Optional, Sequence

from ..common.errors import VerificationError
from ..mht.vo import verify_query_vo
from ..model.block import BlockHeader
from ..model.schema import TableSchema
from ..model.transaction import Transaction
from ..node.auth import AuthQueryServer
from ..node.fullnode import FullNode
from ..sqlparser.nodes import TimeWindow
from .sampling import digest_error_probability


@dataclasses.dataclass
class AuthenticatedAnswer:
    """A verified query answer plus the verification metadata."""

    transactions: tuple[Transaction, ...]
    vo_size_bytes: int
    digests_sampled: int
    digests_matched: int
    residual_risk: float
    chain_height: int


class ThinClient:
    """Header-only client verifying answers from untrusted full nodes."""

    def __init__(
        self,
        full_nodes: Sequence[FullNode],
        seed: int = 0,
        byzantine_ratio: float = 0.0,
        max_byzantine: Optional[int] = None,
    ) -> None:
        if not full_nodes:
            raise VerificationError("a thin client needs at least one full node")
        self._nodes = list(full_nodes)
        self._servers = {id(n): AuthQueryServer(n) for n in self._nodes}
        self._rng = random.Random(seed)
        self._headers: list[BlockHeader] = []
        self._byz_ratio = byzantine_ratio
        self._max_byz = (
            max_byzantine
            if max_byzantine is not None
            else (len(self._nodes) - 1) // 3
        )

    # -- header sync (what a thin client actually stores) ---------------------

    def sync_headers(self, from_node: Optional[FullNode] = None) -> int:
        """Download block headers; returns the new local height."""
        node = from_node or self._rng.choice(self._nodes)
        headers = node.store.headers
        # verify the header chain before adopting it
        prev = None
        for header in headers:
            if prev is not None and header.prev_hash != prev.block_hash():
                raise VerificationError(
                    f"header chain broken at height {header.height}"
                )
            prev = header
        self._headers = headers
        return len(self._headers)

    @property
    def height(self) -> int:
        return len(self._headers)

    def header(self, height: int) -> BlockHeader:
        return self._headers[height]

    # -- the two-phase authenticated query ----------------------------------------

    def authenticated_range(
        self,
        column: str,
        low: Any,
        high: Any,
        table: Optional[str] = None,
        window: Optional[TimeWindow] = None,
        n_aux: int = 2,
        m: int = 2,
        key_of: Optional[Callable[[Transaction], Any]] = None,
        schema: Optional[TableSchema] = None,
        extra_filter: Optional[Callable[[Transaction], bool]] = None,
    ) -> AuthenticatedAnswer:
        """Range query with soundness + completeness verification."""
        if key_of is None:
            key_of = _key_extractor(column, schema)
        # phase one
        server_node = self._rng.choice(self._nodes)
        server = self._servers[id(server_node)]
        vo = server.range_vo(column, low, high, table=table, window=window)
        # phase two
        digest, sampled, matched = self._sample_digests(
            column, low, high, vo.chain_height, table, window, n_aux, m,
            exclude=server_node,
        )
        result = verify_query_vo(
            vo, key_of=key_of, expected_digest=digest, extra_filter=extra_filter
        )
        return AuthenticatedAnswer(
            transactions=result.transactions,
            vo_size_bytes=vo.size_bytes(),
            digests_sampled=sampled,
            digests_matched=matched,
            residual_risk=digest_error_probability(
                self._byz_ratio, m, max(sampled, m), self._max_byz
            ),
            chain_height=vo.chain_height,
        )

    def authenticated_trace(
        self,
        operator: str,
        operation: Optional[str] = None,
        window: Optional[TimeWindow] = None,
        n_aux: int = 2,
        m: int = 2,
    ) -> AuthenticatedAnswer:
        """Tracking query: completeness proven on SenID, operation filtered
        client-side (still complete - see DESIGN.md)."""
        extra = None
        if operation is not None:
            lowered = operation.lower()

            def extra(tx: Transaction) -> bool:
                return tx.tname == lowered

        return self.authenticated_range(
            "senid", operator, operator, window=window,
            n_aux=n_aux, m=m, key_of=lambda tx: tx.senid, extra_filter=extra,
        )

    def verify_transaction(self, tid: int) -> Transaction:
        """SPV check: is transaction ``tid`` really on the chain?

        Fetches an inclusion proof from a random full node and verifies
        it against the locally stored block header - the "simple
        authenticated query" of classic blockchains.
        """
        if not self._headers:
            raise VerificationError("sync_headers() first")
        node = self._rng.choice(self._nodes)
        proof = self._servers[id(node)].inclusion_proof(tid)
        if not 0 <= proof.height < len(self._headers):
            raise VerificationError(
                f"proof references unknown block {proof.height}"
            )
        header = self._headers[proof.height]
        if not proof.verify(header):
            raise VerificationError(
                f"inclusion proof for transaction {tid} does not match "
                f"block {proof.height}'s transaction root"
            )
        tx = Transaction.from_bytes(proof.tx_bytes)
        if tx.tid != tid:
            raise VerificationError(
                f"server returned transaction {tx.tid}, wanted {tid}"
            )
        return tx

    def authenticated_aggregate(
        self,
        func: str,
        column: str,
        low: Any,
        high: Any,
        table: Optional[str] = None,
        schema: Optional[TableSchema] = None,
        window: Optional[TimeWindow] = None,
        n_aux: int = 2,
        m: int = 2,
    ) -> tuple[Any, AuthenticatedAnswer]:
        """A verified aggregate: COUNT/SUM/AVG/MIN/MAX over a proven range.

        Because the underlying range answer is verified sound *and*
        complete, any aggregate computed locally over it inherits both
        properties - the untrusted server cannot bias the aggregate by
        adding, dropping or altering rows.
        """
        from ..query.aggregates import compute_aggregate

        key_of = _key_extractor(column, schema)
        answer = self.authenticated_range(
            column, low, high, table=table, window=window,
            n_aux=n_aux, m=m, key_of=key_of, schema=schema,
        )
        values = [
            v for v in (key_of(tx) for tx in answer.transactions)
            if v is not None
        ]
        return compute_aggregate(func, values), answer

    def authenticated_trace_two_index(
        self,
        operator: str,
        operation: str,
        window: Optional[TimeWindow] = None,
        n_aux: int = 2,
        m: int = 2,
    ) -> AuthenticatedAnswer:
        """Two-dimension tracking with one VO per ALI visited.

        As the paper sketches ("the VO consists of one VO each MB-tree the
        query visited"), the serving node proves the SenID dimension and
        the Tname dimension independently; the client verifies both
        (soundness + completeness on each) and intersects by transaction
        id.  The intersection of two complete sets is complete.
        """
        server_node = self._rng.choice(self._nodes)
        server = self._servers[id(server_node)]
        vo_op = server.range_vo("senid", operator, operator, window=window)
        vo_kind = server.range_vo("tname", operation, operation,
                                  window=window,
                                  height=vo_op.chain_height)
        digest_op, sampled_a, matched_a = self._sample_digests(
            "senid", operator, operator, vo_op.chain_height, None, window,
            n_aux, m, exclude=server_node,
        )
        digest_kind, sampled_b, matched_b = self._sample_digests(
            "tname", operation, operation, vo_op.chain_height, None, window,
            n_aux, m, exclude=server_node,
        )
        by_operator = verify_query_vo(
            vo_op, key_of=lambda tx: tx.senid, expected_digest=digest_op
        )
        by_operation = verify_query_vo(
            vo_kind, key_of=lambda tx: tx.tname, expected_digest=digest_kind
        )
        operation_tids = {tx.tid for tx in by_operation.transactions}
        both = tuple(
            tx for tx in by_operator.transactions if tx.tid in operation_tids
        )
        return AuthenticatedAnswer(
            transactions=both,
            vo_size_bytes=vo_op.size_bytes() + vo_kind.size_bytes(),
            digests_sampled=sampled_a + sampled_b,
            digests_matched=min(matched_a, matched_b),
            residual_risk=digest_error_probability(
                self._byz_ratio, m, max(sampled_a, m), self._max_byz
            ),
            chain_height=vo_op.chain_height,
        )

    # -- internals --------------------------------------------------------------------

    def _sample_digests(
        self,
        column: str,
        low: Any,
        high: Any,
        height: int,
        table: Optional[str],
        window: Optional[TimeWindow],
        n_aux: int,
        m: int,
        exclude: FullNode,
    ) -> tuple[bytes, int, int]:
        """Collect digests from auxiliary nodes until m agree."""
        pool = [n for n in self._nodes if n is not exclude] or list(self._nodes)
        counts: dict[bytes, int] = {}
        sampled = 0
        order = list(pool)
        self._rng.shuffle(order)
        for node in (order * ((n_aux // max(len(order), 1)) + 1))[:max(n_aux, m)]:
            digest = self._servers[id(node)].auxiliary_digest(
                column, low, high, height, table=table, window=window
            )
            sampled += 1
            counts[digest] = counts.get(digest, 0) + 1
            if counts[digest] >= m:
                return digest, sampled, counts[digest]
        best = max(counts.items(), key=lambda kv: kv[1])
        raise VerificationError(
            f"no digest reached {m} matching copies from {sampled} auxiliary "
            f"nodes (best: {best[1]})"
        )


def _key_extractor(
    column: str, schema: Optional[TableSchema]
) -> Callable[[Transaction], Any]:
    lowered = column.lower()
    if lowered in ("tid", "ts", "senid", "tname"):
        return lambda tx: getattr(tx, lowered)
    if schema is None:
        raise VerificationError(
            f"verifying on app column {column!r} needs the table schema"
        )
    position = None
    for i, col in enumerate(schema.app_columns):
        if col.name == lowered:
            position = i
            break
    if position is None:
        raise VerificationError(f"schema has no column {column!r}")
    return lambda tx: tx.values[position]
