"""Resilient transaction submission (retry + backoff + dedup nonces).

The paper's clients fire transactions at the ordering service and wait
for acks; under an unreliable network (lost submissions, lost acks,
crashed brokers) a naive client either hangs forever or double-submits.
:class:`ResilientSubmitter` wraps any consensus engine with the standard
production recipe:

* every transaction is stamped with a unique ``(client_id, seq)`` nonce,
  so the engine's :class:`~repro.consensus.base.SubmissionLedger` can
  collapse retries instead of committing them twice;
* each attempt runs under a per-attempt timeout; an unacked attempt is
  retried with exponential backoff plus deterministic jitter;
* an optional overall deadline bounds total waiting
  (:class:`~repro.common.errors.TimeoutError_`), and a bounded attempt
  budget turns persistent failure into
  :class:`~repro.common.errors.RetryExhausted` instead of an infinite
  loop.

Everything runs on the simulated bus clock, so chaos tests are fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional

from ..common.errors import ConfigError, RetryExhausted, SebdbError, TimeoutError_
from ..consensus.base import ConsensusEngine, ReplyCallback
from ..model.transaction import Transaction
from ..network.bus import MessageBus

#: submission lifecycle states
PENDING = "pending"
ACKED = "acked"
FAILED = "failed"


@dataclasses.dataclass
class SubmissionRecord:
    """Tracks one logical client request across all its retry attempts."""

    tx: Transaction
    nonce: str
    status: str = PENDING
    attempts: int = 0
    submitted_at: float = 0.0
    acked_at: Optional[float] = None
    #: simulated commit timestamp reported by the engine's ack
    commit_ms: Optional[float] = None
    #: terminal error for ``failed`` records (TimeoutError_/RetryExhausted)
    error: Optional[SebdbError] = None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


class ResilientSubmitter:
    """Client-side retry pipeline in front of a consensus engine."""

    def __init__(
        self,
        engine: ConsensusEngine,
        bus: MessageBus,
        client_id: str = "client",
        max_attempts: int = 6,
        attempt_timeout_ms: float = 800.0,
        base_backoff_ms: float = 50.0,
        backoff_factor: float = 2.0,
        max_backoff_ms: float = 2_000.0,
        jitter_ms: float = 25.0,
        deadline_ms: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        self.engine = engine
        self.bus = bus
        self.client_id = client_id
        self.max_attempts = max_attempts
        self.attempt_timeout_ms = attempt_timeout_ms
        self.base_backoff_ms = base_backoff_ms
        self.backoff_factor = backoff_factor
        self.max_backoff_ms = max_backoff_ms
        self.jitter_ms = jitter_ms
        self.deadline_ms = deadline_ms
        self._rng = random.Random(seed)
        self._seq = 0
        self.records: list[SubmissionRecord] = []

    # -- aggregate views ----------------------------------------------------

    @property
    def acked(self) -> list[SubmissionRecord]:
        return [r for r in self.records if r.status == ACKED]

    @property
    def failed(self) -> list[SubmissionRecord]:
        return [r for r in self.records if r.status == FAILED]

    @property
    def pending(self) -> list[SubmissionRecord]:
        return [r for r in self.records if r.status == PENDING]

    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        on_ack: Optional[ReplyCallback] = None,
        on_done: Optional[Callable[[SubmissionRecord], None]] = None,
    ) -> SubmissionRecord:
        """Submit ``tx``, retrying until acked, exhausted, or past deadline.

        The transaction is stamped with a fresh client nonce unless it
        already carries one (a caller-managed retry keeps its identity).
        Returns the live :class:`SubmissionRecord`; drive the bus to make
        progress and inspect ``record.status`` afterwards.  ``on_done``
        fires exactly once when the record leaves PENDING - on ACKED *or*
        FAILED - which is what closed-loop drivers key their next
        submission off.
        """
        if not tx.nonce:
            self._seq += 1
            tx = dataclasses.replace(tx, nonce=f"{self.client_id}-{self._seq}")
        record = SubmissionRecord(
            tx=tx, nonce=tx.nonce, submitted_at=self.bus.clock.now_ms()
        )
        self.records.append(record)
        self._attempt(record, on_ack, on_done)
        return record

    def _attempt(
        self,
        record: SubmissionRecord,
        on_ack: Optional[ReplyCallback],
        on_done: Optional[Callable[[SubmissionRecord], None]] = None,
    ) -> None:
        if record.status != PENDING:
            return  # acked while a retry was waiting out its backoff
        record.attempts += 1
        attempt_no = record.attempts

        def on_reply(commit_ms: float) -> None:
            if record.status != PENDING:
                return  # late ack of an attempt we already resolved
            record.status = ACKED
            record.acked_at = self.bus.clock.now_ms()
            record.commit_ms = commit_ms
            if on_ack is not None:
                on_ack(commit_ms)
            if on_done is not None:
                on_done(record)

        def on_timeout() -> None:
            if record.status != PENDING or record.attempts != attempt_no:
                return  # acked, failed, or a newer attempt is in flight
            now = self.bus.clock.now_ms()
            if (self.deadline_ms is not None
                    and now - record.submitted_at >= self.deadline_ms):
                record.status = FAILED
                record.error = TimeoutError_(
                    f"request {record.nonce} missed its "
                    f"{self.deadline_ms:.0f} ms deadline "
                    f"after {record.attempts} attempt(s)"
                )
                if on_done is not None:
                    on_done(record)
                return
            if record.attempts >= self.max_attempts:
                record.status = FAILED
                record.error = RetryExhausted(
                    f"request {record.nonce} unacked after "
                    f"{record.attempts} attempt(s)"
                )
                if on_done is not None:
                    on_done(record)
                return
            self.bus.schedule(
                self._backoff(attempt_no),
                lambda: self._attempt(record, on_ack, on_done),
            )

        self.engine.submit(record.tx, on_reply)
        self.bus.schedule(self.attempt_timeout_ms, on_timeout)

    def _backoff(self, attempt_no: int) -> float:
        base = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.backoff_factor ** (attempt_no - 1),
        )
        if self.jitter_ms:
            base += self._rng.uniform(0, self.jitter_ms)
        return base
