"""Auxiliary-node sampling maths (equations 4-6 of the paper).

The auxiliary node a thin client consults can itself be Byzantine.  The
client therefore samples n auxiliary nodes and accepts a digest once m
identical copies arrive.  With ``p`` the fraction of Byzantine nodes,
eq. (4) gives the probability the *wrong* digest wins the race to m
copies, eq. (5) the probability the right one does, and eq. (6) the
residual risk θ.  Clients tune (n, m) for a target credibility.
"""

from __future__ import annotations

import math

from ..common.errors import ConfigError, VerificationError


def prob_wrong_digest_wins(p: float, m: int) -> float:
    """Eq. (4): p_w = p * sum_{i=0}^{m-1} C(m-1+i, i) p^{m-1} (1-p)^i."""
    _check_p(p)
    if m < 1:
        raise ConfigError("m must be at least 1")
    total = sum(
        math.comb(m - 1 + i, i) * p ** (m - 1) * (1 - p) ** i for i in range(m)
    )
    return p * total


def prob_right_digest_wins(p: float, m: int) -> float:
    """Eq. (5): p_r, the mirror image of eq. (4)."""
    _check_p(p)
    if m < 1:
        raise ConfigError("m must be at least 1")
    q = 1 - p
    total = sum(
        math.comb(m - 1 + i, i) * q ** (m - 1) * p ** i for i in range(m)
    )
    return q * total


def digest_error_probability(p: float, m: int, n: int, max_byzantine: int) -> float:
    """Eq. (6): θ, the probability an accepted digest is wrong.

    θ = p_w / (p_w + p_r) when m + i <= n and m <= max, and 0 when m
    exceeds the number of Byzantine nodes that could exist (the wrong
    digest can then never reach m copies).
    """
    if m > max_byzantine:
        return 0.0
    if m > n:
        raise VerificationError(f"cannot wait for {m} digests from {n} nodes")
    pw = prob_wrong_digest_wins(p, m)
    pr = prob_right_digest_wins(p, m)
    if pw + pr == 0:
        return 0.0
    return pw / (pw + pr)


def minimum_m_for_risk(p: float, n: int, max_byzantine: int, target: float) -> int:
    """Smallest m <= n with θ below ``target`` (how a client tunes m)."""
    for m in range(1, n + 1):
        if digest_error_probability(p, m, n, max_byzantine) <= target:
            return m
    raise VerificationError(
        f"no m <= {n} achieves risk {target} at Byzantine ratio {p}"
    )


def _check_p(p: float) -> None:
    if not 0 <= p <= 1:
        raise ConfigError(f"Byzantine ratio must be in [0, 1], got {p}")
