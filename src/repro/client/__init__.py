"""Clients: thin (verifying) client, resilient submitter, sampling maths."""

from .sampling import (
    digest_error_probability,
    minimum_m_for_risk,
    prob_right_digest_wins,
    prob_wrong_digest_wins,
)
from .submitter import ACKED, FAILED, PENDING, ResilientSubmitter, SubmissionRecord
from .thin import AuthenticatedAnswer, ThinClient

__all__ = [
    "ACKED",
    "FAILED",
    "PENDING",
    "AuthenticatedAnswer",
    "ResilientSubmitter",
    "SubmissionRecord",
    "ThinClient",
    "digest_error_probability",
    "minimum_m_for_risk",
    "prob_right_digest_wins",
    "prob_wrong_digest_wins",
]
