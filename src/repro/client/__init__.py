"""Clients: thin (header-only, verifying) client and sampling maths."""

from .sampling import (
    digest_error_probability,
    minimum_m_for_risk,
    prob_right_digest_wins,
    prob_wrong_digest_wins,
)
from .thin import AuthenticatedAnswer, ThinClient

__all__ = [
    "AuthenticatedAnswer",
    "ThinClient",
    "digest_error_probability",
    "minimum_m_for_risk",
    "prob_right_digest_wins",
    "prob_wrong_digest_wins",
]
