"""Legacy setup shim.

Environments without the ``wheel`` package cannot take the PEP 660
editable-install path; with this shim ``pip install -e .`` (and
``python setup.py develop``) fall back to the classic setuptools route.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
