"""Fig 12 - Q4 range-query latency vs result size.

Paper shape: scan and bitmap are insensitive to the result size, the
layered path grows with it, and the method gap narrows.
"""

import pytest

from conftest import save_series
from repro.bench.generator import (
    RESULT_HIGH,
    RESULT_LOW,
    build_range_dataset,
    create_standard_indexes,
)
from repro.bench.harness import fig12_range_resultsize

SIZES = [100, 400, 1600]
NUM_BLOCKS = 100
TXS_PER_BLOCK = 60


@pytest.fixture(scope="module")
def series():
    data = fig12_range_resultsize(
        result_sizes=SIZES, num_blocks=NUM_BLOCKS,
        txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig12", "Fig 12: Q4 range query vs result size", data,
                x_label="result_size")
    return data


def test_fig12_shapes(benchmark, series):
    def at(label, x):
        return dict(series[label])[x]

    assert at("LU", SIZES[-1]) > at("LU", SIZES[0])          # layered grows
    assert at("SU", SIZES[-1]) < 1.5 * at("SU", SIZES[0])     # scan flat
    assert at("BU", SIZES[-1]) < 1.6 * at("BU", SIZES[0])     # bitmap ~flat
    gap_small = at("SU", SIZES[0]) / at("LU", SIZES[0])
    gap_large = at("SU", SIZES[-1]) / at("LU", SIZES[-1])
    assert gap_large < gap_small                              # gap narrows

    dataset = build_range_dataset(NUM_BLOCKS, TXS_PER_BLOCK, SIZES[0])
    create_standard_indexes(dataset)

    def layered_q4():
        dataset.store.clear_caches()
        return dataset.node.query(
            "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
            params=(RESULT_LOW, RESULT_HIGH), method="layered",
        )

    result = benchmark(layered_q4)
    assert len(result) == SIZES[0]
