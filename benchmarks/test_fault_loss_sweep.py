"""Chaos benchmark - throughput / latency / commit rate vs loss rate.

Robustness shape: with nonce-stamped retries, the commit rate stays at
~100% across injected loss rates up to 20% on the submit link, while the
cost of loss shows up where it should - retry traffic grows with the
loss rate and tail latency (p95) degrades - instead of as lost
transactions.
"""

import pytest

from conftest import save_series
from repro.bench.chaos_bench import (
    run_lossy_load,
    sweep_loss_rates,
    sweep_loss_rates_closed_loop,
)
from repro.consensus.kafka import KafkaOrderer
from repro.network import MessageBus

LOSS_RATES = [0.0, 0.02, 0.05, 0.1, 0.2]


@pytest.fixture(scope="module")
def series():
    samples = {
        engine: sweep_loss_rates(engine, LOSS_RATES, num_txs=200,
                                 window_ms=1_000.0)
        for engine in ("kafka", "pbft")
    }
    throughput = {
        engine: [(s.loss_rate, s.throughput_tps) for s in points]
        for engine, points in samples.items()
    }
    p95 = {
        engine: [(s.loss_rate, s.p95_latency_ms) for s in points]
        for engine, points in samples.items()
    }
    commit_rate = {
        engine: [(s.loss_rate, 100.0 * s.commit_rate) for s in points]
        for engine, points in samples.items()
    }
    retries = {
        engine: [(s.loss_rate, float(s.retries)) for s in points]
        for engine, points in samples.items()
    }
    save_series("fault_loss_throughput",
                "Chaos: write throughput vs submit-link loss rate",
                throughput, x_label="loss_rate", y_label="tps")
    save_series("fault_loss_p95_latency",
                "Chaos: p95 response time vs submit-link loss rate",
                p95, x_label="loss_rate", y_label="ms")
    save_series("fault_loss_commit_rate",
                "Chaos: commit rate vs submit-link loss rate",
                commit_rate, x_label="loss_rate", y_label="pct")
    save_series("fault_loss_retries",
                "Chaos: client retries vs submit-link loss rate",
                retries, x_label="loss_rate", y_label="count")
    return samples


def test_loss_sweep_shapes(benchmark, series):
    for engine, points in series.items():
        by_loss = {s.loss_rate: s for s in points}
        # resilience headline: >=99% commit at 5% loss, for every engine
        assert by_loss[0.05].commit_rate >= 0.99, engine
        # even at 20% loss nothing is silently dropped - every submission
        # terminates as acked or as a typed failure
        worst = by_loss[0.2]
        assert worst.acked + worst.failed == worst.submitted
        assert worst.commit_rate >= 0.95, engine
        # the cost of loss is retry traffic, which grows with the rate
        assert by_loss[0.2].retries > by_loss[0.0].retries, engine
        assert by_loss[0.0].retries == 0, engine

    def one_round():
        bus = MessageBus(seed=3)
        engine = KafkaOrderer(bus, batch_txs=50, timeout_ms=50.0)
        for i in range(4):
            engine.register_replica(f"sink-{i}", lambda batch: None)
        return run_lossy_load(bus, engine, loss_rate=0.05, num_txs=100,
                              window_ms=500.0)

    sample = benchmark(one_round)
    assert sample.commit_rate >= 0.99


def test_closed_loop_loss_costs_throughput(benchmark):
    """Closed-loop drivers expose what the open loop hides: loss -> tps.

    Each client submits its next request only when the previous one
    terminates, so every retry round trip stalls that client and fewer
    requests complete per unit time.  The open-loop sweep above shows a
    near-flat tps curve; this one must slope down.
    """
    samples = benchmark.pedantic(
        lambda: sweep_loss_rates_closed_loop(
            "kafka", [0.0, 0.2], clients=6, window_ms=2_000.0, seed=5,
        ),
        rounds=1, iterations=1,
    )
    clean, lossy = samples
    save_series(
        "fault_loss_closed_loop_throughput",
        "Chaos: closed-loop throughput vs submit-link loss rate",
        {"kafka": [(s.loss_rate, s.throughput_tps) for s in samples]},
        x_label="loss_rate", y_label="tps",
    )
    # loss must manifest as reduced throughput, not lost transactions
    assert lossy.throughput_tps < clean.throughput_tps
    assert lossy.acked < clean.acked
    # ... while still never silently dropping anything
    assert lossy.acked + lossy.failed == lossy.submitted
    assert lossy.retries > clean.retries == 0
