"""Fig 11 - Q4 range-query latency vs blockchain size.

Paper shape: layered wins everywhere (histogram level-1 filter + per-tuple
reads); BG beats SG; scan and bitmap grow with the chain, layered does not.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.bench.generator import (
    RESULT_HIGH,
    RESULT_LOW,
    build_range_dataset,
    create_standard_indexes,
)
from repro.bench.harness import fig11_range_datasize

BLOCKS = [50, 100, 150]
RESULT = 200
TXS_PER_BLOCK = 60


@pytest.fixture(scope="module")
def series():
    data = fig11_range_datasize(
        block_counts=BLOCKS, result_size=RESULT, txs_per_block=TXS_PER_BLOCK
    )
    save_series("fig11", "Fig 11: Q4 range query vs blockchain size", data,
                x_label="blocks")
    return data


def test_fig11_shapes(benchmark, series):
    assert last_point(series, "LU") < last_point(series, "BU")
    assert last_point(series, "LU") < last_point(series, "SU")
    assert last_point(series, "SU") > 1.5 * first_point(series, "SU")
    assert last_point(series, "LU") < 1.5 * first_point(series, "LU")

    dataset = build_range_dataset(BLOCKS[-1], TXS_PER_BLOCK, RESULT)
    create_standard_indexes(dataset)

    def layered_q4():
        dataset.store.clear_caches()
        return dataset.node.query(
            "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
            params=(RESULT_LOW, RESULT_HIGH), method="layered",
        )

    result = benchmark(layered_q4)
    assert len(result) == RESULT
