"""Fig 19 - authenticated query verification time at the client side.

Paper shape: reconstructing a handful of MB-tree roots from the ALI's VO
is far cheaper than recomputing the transaction Merkle root of every
shipped block, and the basic client's cost grows with the chain.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import figs17_19_authenticated
from repro.mht.vo import verify_query_vo
from repro.node.auth import AuthQueryServer

BLOCKS = [50, 100, 150]
RESULT = 300


@pytest.fixture(scope="module")
def auth_series():
    return figs17_19_authenticated(block_counts=BLOCKS, result_size=RESULT)


def test_fig19_shapes(benchmark, auth_series):
    client_ms = auth_series["fig19_client_ms"]
    save_series("fig19", "Fig 19: client-side time (ms)", client_ms,
                x_label="blocks", y_label="ms")
    assert last_point(client_ms, "ALI-Q2") < last_point(client_ms, "basic")
    assert last_point(client_ms, "ALI-Q4") < last_point(client_ms, "basic")
    assert last_point(client_ms, "basic") > 1.3 * first_point(client_ms, "basic")

    dataset = build_tracking_dataset(BLOCKS[0], 40, RESULT)
    create_standard_indexes(dataset, authenticated=True)
    server = AuthQueryServer(dataset.node)
    vo = server.trace_vo("org1")
    digest = server.auxiliary_digest("senid", "org1", "org1", vo.chain_height)

    def client_verify():
        return verify_query_vo(vo, key_of=lambda tx: tx.senid,
                               expected_digest=digest)

    verified = benchmark(client_verify)
    assert len(verified.transactions) == RESULT
