"""Fig 16 - Q6 on-off chain join latency vs result size.

Paper shape: layered latency grows with the result size (more blocks pass
the [min, max] filter and more tuples are read) yet stays below the
hash-join baselines.
"""

import pytest

from conftest import save_series
from repro.bench.generator import build_onoff_dataset, create_standard_indexes
from repro.bench.harness import fig16_onoff_resultsize

SIZES = [100, 400, 800]
NUM_BLOCKS = 100
ONCHAIN_ROWS = 1500
TXS_PER_BLOCK = 60

Q6 = ("SELECT * FROM onchain.distribute, offchain.doneeinfo "
      "ON distribute.donee = doneeinfo.donee")


@pytest.fixture(scope="module")
def series():
    data = fig16_onoff_resultsize(
        result_sizes=SIZES, num_blocks=NUM_BLOCKS,
        onchain_rows=ONCHAIN_ROWS, txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig16", "Fig 16: Q6 on-off join vs result size", data,
                x_label="result_pairs")
    return data


def test_fig16_shapes(benchmark, series):
    def at(label, x):
        return dict(series[label])[x]

    assert at("LU", SIZES[-1]) > at("LU", SIZES[0])
    assert at("LU", SIZES[-1]) < at("SU", SIZES[-1])

    dataset = build_onoff_dataset(NUM_BLOCKS, TXS_PER_BLOCK, ONCHAIN_ROWS,
                                  SIZES[0])
    create_standard_indexes(dataset)

    def layered_q6():
        dataset.store.clear_caches()
        return dataset.node.query(Q6, method="layered")

    result = benchmark(layered_q6)
    assert len(result) == SIZES[0]
