"""Ablation - cache capacity vs repeat-query cost (extends Fig 22).

With the transaction cache, a repeated tracking query's I/O drops as the
cache grows, until the whole result working set fits and the cost floors
at zero misses.
"""

import pytest

from conftest import save_series
from repro.bench.generator import build_tracking_dataset
from repro.common.config import SebdbConfig

CAPACITIES = [0, 4 * 1024, 16 * 1024, 64 * 1024, 512 * 1024]
NUM_BLOCKS = 50
TXS_PER_BLOCK = 40
RESULT = 300


def repeat_cost(capacity: int) -> tuple[float, float]:
    """(modelled ms of a repeat run, cache hit ratio)."""
    config = SebdbConfig.in_memory(
        block_size_txs=100_000, cache_mode="transaction",
        cache_bytes=capacity,
    )
    dataset = build_tracking_dataset(NUM_BLOCKS, TXS_PER_BLOCK, RESULT,
                                     seed=5, config=config)
    from repro.bench.generator import create_standard_indexes

    create_standard_indexes(dataset)
    node = dataset.node
    node.query("TRACE OPERATOR = 'org1'", method="layered")  # warm
    node.store.cost.reset()
    before = node.store.cost.snapshot()
    result = node.query("TRACE OPERATOR = 'org1'", method="layered")
    delta = node.store.cost.snapshot().delta(before)
    assert len(result) == RESULT
    return delta.elapsed_ms, node.store.tx_cache.hit_ratio()


@pytest.fixture(scope="module")
def series():
    ms_points = []
    hit_points = []
    for capacity in CAPACITIES:
        ms, hits = repeat_cost(capacity)
        ms_points.append((capacity // 1024, ms))
        hit_points.append((capacity // 1024, hits * 100))
    data = {"repeat_ms": ms_points, "hit_pct": hit_points}
    save_series("ablation_cache", "Ablation: cache capacity (KB)", data,
                x_label="cache_kb", y_label="ms / %")
    return data


def test_cache_size_ablation(benchmark, series):
    ms = dict(series["repeat_ms"])
    # no cache: every repeat pays full I/O; big cache: repeats are free
    assert ms[0] > 0
    assert ms[CAPACITIES[-1] // 1024] == 0.0
    # cost is monotonically non-increasing in capacity
    values = [ms[c // 1024] for c in CAPACITIES]
    assert all(a >= b for a, b in zip(values, values[1:]))

    result = benchmark(lambda: repeat_cost(64 * 1024))
    assert result[0] >= 0
