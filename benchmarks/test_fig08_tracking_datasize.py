"""Fig 8 - Q2 tracking latency vs blockchain size (result size fixed).

Paper shape: layered (LU/LG) far below bitmap and scan and insensitive to
chain growth; BG beats SG/BU because Gaussian placement touches fewer
blocks; scan grows linearly with the chain.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import fig8_tracking_datasize

BLOCKS = [50, 100, 150]
RESULT = 300
TXS_PER_BLOCK = 60


@pytest.fixture(scope="module")
def series():
    data = fig8_tracking_datasize(
        block_counts=BLOCKS, result_size=RESULT, txs_per_block=TXS_PER_BLOCK
    )
    save_series("fig08", "Fig 8: Q2 tracking vs blockchain size", data,
                x_label="blocks")
    return data


def test_fig08_shapes(benchmark, series):
    # layered wins at the largest chain
    assert last_point(series, "LU") < last_point(series, "BU")
    assert last_point(series, "LU") < last_point(series, "SU")
    # Gaussian placement helps the bitmap path
    assert last_point(series, "BG") < last_point(series, "BU")
    # scan grows with chain size, layered stays flat
    assert last_point(series, "SU") > 1.5 * first_point(series, "SU")
    assert last_point(series, "LU") < 1.5 * first_point(series, "LU")

    dataset = build_tracking_dataset(BLOCKS[-1], TXS_PER_BLOCK, RESULT)
    create_standard_indexes(dataset)

    def layered_q2():
        dataset.store.clear_caches()
        return dataset.node.query("TRACE OPERATOR = 'org1'", method="layered")

    result = benchmark(layered_q2)
    assert len(result) == RESULT
