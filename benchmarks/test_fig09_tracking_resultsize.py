"""Fig 9 - Q2 tracking latency vs result size (blockchain size fixed).

Paper shape: the gap between the three methods narrows as the result set
grows (layered pays one random I/O per result row); scan and bitmap are
largely insensitive to the result size.
"""

import pytest

from conftest import save_series
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import fig9_tracking_resultsize

SIZES = [200, 800, 3200]
NUM_BLOCKS = 100
TXS_PER_BLOCK = 60


@pytest.fixture(scope="module")
def series():
    data = fig9_tracking_resultsize(
        result_sizes=SIZES, num_blocks=NUM_BLOCKS,
        txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig09", "Fig 9: Q2 tracking vs result size", data,
                x_label="result_size")
    return data


def test_fig09_shapes(benchmark, series):
    def at(label, x):
        return dict(series[label])[x]

    # layered grows with the result size
    assert at("LU", SIZES[-1]) > at("LU", SIZES[0])
    # scan is insensitive to the result size
    assert at("SU", SIZES[-1]) < 1.5 * at("SU", SIZES[0])
    # the scan/layered gap narrows as results grow
    gap_small = at("SU", SIZES[0]) / at("LU", SIZES[0])
    gap_large = at("SU", SIZES[-1]) / at("LU", SIZES[-1])
    assert gap_large < gap_small

    dataset = build_tracking_dataset(NUM_BLOCKS, TXS_PER_BLOCK, SIZES[0])
    create_standard_indexes(dataset)

    def layered_q2():
        dataset.store.clear_caches()
        return dataset.node.query("TRACE OPERATOR = 'org1'", method="layered")

    result = benchmark(layered_q2)
    assert len(result) == SIZES[0]
