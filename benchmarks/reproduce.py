#!/usr/bin/env python3
"""Regenerate every figure of the paper in one run and print the series.

This is the human-facing companion to the pytest-benchmark files: it runs
each harness function at the default (scaled) parameters and prints each
figure's underlying table, mirroring section VII of the paper.

Run:  python benchmarks/reproduce.py [--fast]
"""

import argparse
import sys
import time

from repro.bench import print_table
from repro.bench.harness import (
    fig7_write,
    fig8_tracking_datasize,
    fig9_tracking_resultsize,
    fig10_tracking_window,
    fig11_range_datasize,
    fig12_range_resultsize,
    fig13_join_datasize,
    fig14_join_resultsize,
    fig15_onoff_datasize,
    fig16_onoff_resultsize,
    fig20_chainsql_one_dim,
    fig21_chainsql_two_dim,
    fig22_cache,
    figs17_19_authenticated,
    print_series,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps (roughly 4x faster)")
    args = parser.parse_args()
    blocks = [50, 100] if args.fast else [50, 100, 150, 200, 250]
    t0 = time.time()

    print_table()  # Table I

    data = fig7_write()
    print("\n== Fig 7: write throughput / latency ==")
    for engine, points in data.items():
        for clients, tps, latency in points:
            print(f"  {engine:<11} clients={clients:<4} tps={tps:8.0f} "
                  f"latency={latency:7.1f} ms")

    print_series("Fig 8: Q2 vs blockchain size",
                 fig8_tracking_datasize(block_counts=blocks), "blocks")
    print_series("Fig 9: Q2 vs result size",
                 fig9_tracking_resultsize(), "result")
    print_series("Fig 10: Q3 vs time window",
                 fig10_tracking_window(), "window")
    print_series("Fig 11: Q4 vs blockchain size",
                 fig11_range_datasize(block_counts=blocks), "blocks")
    print_series("Fig 12: Q4 vs result size",
                 fig12_range_resultsize(), "result")
    print_series("Fig 13: Q5 vs blockchain size",
                 fig13_join_datasize(block_counts=blocks[:4]), "blocks")
    print_series("Fig 14: Q5 vs result size",
                 fig14_join_resultsize(), "result")
    print_series("Fig 15: Q6 vs blockchain size",
                 fig15_onoff_datasize(block_counts=blocks[:4]), "blocks")
    print_series("Fig 16: Q6 vs result size",
                 fig16_onoff_resultsize(), "result")
    auth = figs17_19_authenticated(block_counts=blocks)
    print_series("Fig 17: VO size (KB)", auth["fig17_vo_size_kb"],
                 "blocks", "KB")
    print_series("Fig 18: server time", auth["fig18_server_ms"],
                 "blocks", "ms")
    print_series("Fig 19: client time", auth["fig19_client_ms"],
                 "blocks", "ms")
    print_series("Fig 20: 1-D tracking vs ChainSQL",
                 fig20_chainsql_one_dim(block_counts=blocks), "blocks")
    print_series("Fig 21: 2-D tracking vs ChainSQL",
                 fig21_chainsql_two_dim(), "operator txs")
    print_series("Fig 22: cache policies", fig22_cache(), "query",
                 "ms/request")

    print(f"\nall figures regenerated in {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
