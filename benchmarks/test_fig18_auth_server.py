"""Fig 18 - authenticated query processing time at the server side.

Paper shape: the ALI server reads only result tuples through the index
(cheap); the basic server scans and ships every block, growing with the
chain.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.baselines.basic_auth import BasicAuthServer
from repro.bench.generator import build_range_dataset, create_standard_indexes
from repro.bench.harness import figs17_19_authenticated

BLOCKS = [50, 100, 150]
RESULT = 300


@pytest.fixture(scope="module")
def auth_series():
    return figs17_19_authenticated(block_counts=BLOCKS, result_size=RESULT)


def test_fig18_shapes(benchmark, auth_series):
    server_ms = auth_series["fig18_server_ms"]
    save_series("fig18", "Fig 18: server-side time (ms)", server_ms,
                x_label="blocks", y_label="ms")
    assert last_point(server_ms, "ALI-Q2") < last_point(server_ms, "basic")
    assert last_point(server_ms, "ALI-Q4") < last_point(server_ms, "basic")
    assert last_point(server_ms, "basic") > 1.5 * first_point(server_ms, "basic")

    dataset = build_range_dataset(BLOCKS[0], 40, RESULT)
    create_standard_indexes(dataset, authenticated=True)
    basic = BasicAuthServer(dataset.node)

    def basic_query():
        dataset.store.clear_caches()
        return basic.query()

    vo = benchmark(basic_query)
    assert len(vo.block_bytes) == dataset.store.height
