"""Table I - comparison of blockchain database systems.

The qualitative matrix is data (``repro.bench.comparison``); the benchmark
asserts SEBDB's claimed feature row is actually backed by the
implementation, then times the feature self-check.
"""

from repro.bench.comparison import TABLE_I, print_table, sebdb_row


def _sebdb_features_hold() -> bool:
    """Exercise one instance of every feature Table I claims for SEBDB."""
    from repro import OffChainDatabase, SebdbNetwork, ThinClient

    net = SebdbNetwork(num_nodes=4, consensus="pbft", batch_txs=4,
                       timeout_ms=20)                       # decentralized
    net.execute("CREATE t (a string, amount decimal)")      # SQL interface,
    net.execute("INSERT INTO t VALUES ('x', 1.0)", sender="org1")
    net.execute("INSERT INTO t VALUES ('y', 2.0)", sender="org1")
    net.commit()                                            # rel. semantics
    db = OffChainDatabase()
    db.create_table("info", [("a", "string"), ("extra", "string")])
    db.insert("info", [("x", "private")])
    net.attach_offchain(db)
    joined = net.execute(
        "SELECT * FROM onchain.t, offchain.info ON t.a = info.a"
    )                                                       # on/off-chain
    for node in net.nodes:
        node.create_index("senid", authenticated=True)
    client = ThinClient(net.nodes, seed=1)
    client.sync_headers()
    answer = client.authenticated_trace("org1")             # auth. query
    return (
        net.chains_consistent()
        and len(joined) == 1
        and len(answer.transactions) == 2
    )


def test_table1(benchmark):
    row = sebdb_row()
    assert row.decentralization
    assert row.relational_semantics == "strong"
    assert row.sql_interface == "yes"
    assert row.authenticated_query == "yes"
    assert row.on_off_chain_integration
    assert len(TABLE_I) == 4
    print_table()
    assert benchmark(_sebdb_features_hold)
