"""Fig 20 - one-dimension tracking, SEBDB vs ChainSQL.

Paper shape: both systems are insensitive to the blockchain size because
both answer through an index (SEBDB's layered index on SenID, ChainSQL's
RDBMS index on the sender).
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.baselines.chainsql import ChainSQLBaseline
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import fig20_chainsql_one_dim

BLOCKS = [50, 100, 150]
RESULT = 300


@pytest.fixture(scope="module")
def series():
    data = fig20_chainsql_one_dim(block_counts=BLOCKS, result_size=RESULT)
    save_series("fig20", "Fig 20: 1-D tracking, SEBDB vs ChainSQL", data,
                x_label="blocks")
    return data


def test_fig20_shapes(benchmark, series):
    # both indexed: neither grows materially with the chain
    assert last_point(series, "SEBDB") < 2.5 * first_point(series, "SEBDB")
    assert last_point(series, "ChainSQL") < 2.5 * first_point(series, "ChainSQL")

    dataset = build_tracking_dataset(BLOCKS[0], 40, RESULT)
    create_standard_indexes(dataset)
    baseline = ChainSQLBaseline()
    baseline.replicate_chain(dataset.store)

    metrics = benchmark(lambda: baseline.track_one_dimension("org1"))
    assert metrics.rows_returned == RESULT
