"""Per-query plan leaderboard: the optimizer's modelled cost, gated.

Runs a fixed corpus of queries over a deterministic BChainBench-style
chain (seeded data, explicit timestamps, no wall clocks) and records the
modelled I/O milliseconds of each optimizer-chosen plan.  The numbers
come from the cost model, not timers, so they are exactly reproducible -
which is what makes a regression gate on plan *choice* possible: a plan
change shows up as a modelled-ms delta, never as machine noise.

Usage::

    PYTHONPATH=src python benchmarks/leaderboard.py                  # run + TSV
    PYTHONPATH=src python benchmarks/leaderboard.py --check          # CI gate
    PYTHONPATH=src python benchmarks/leaderboard.py --write-baseline

The default run writes ``benchmarks/results/fig_leaderboard.tsv``, a
win/regression waterfall against the committed baseline (best win
first).  ``--check`` exits non-zero when any single query's modelled
cost regressed more than ``REGRESSION_LIMIT_PCT`` - the optimizer picked
a worse plan than the one the baseline recorded.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Optional

from repro.bench.schema import DISTRIBUTE, DONATE, ONCHAIN_SCHEMAS, TRANSFER
from repro.index.manager import IndexManager
from repro.model import Block, Catalog, Transaction, make_genesis
from repro.offchain import OffChainDatabase
from repro.query import QueryEngine
from repro.storage import BlockStore

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "leaderboard_baseline.tsv"
OUTPUT_PATH = RESULTS_DIR / "fig_leaderboard.tsv"

#: a query may not cost more than this much over its baseline plan
REGRESSION_LIMIT_PCT = 20.0

NUM_BLOCKS = 20
TXS_PER_BLOCK = 30
ORGS = ("org1", "org2", "org3")
DONEES = ("tom", "amy", "bob", "sue")

#: the fixed corpus: (query id, SQL)
CORPUS = (
    # no donate row carries this amount: the level-1 filter must prove
    # the query empty without reading a block (modelled cost 0)
    ("q01_point_miss", "SELECT * FROM donate WHERE amount = 250"),
    ("q02_narrow_range", "SELECT * FROM donate WHERE amount BETWEEN 100 AND 200"),
    ("q03_wide_range", "SELECT * FROM donate WHERE amount BETWEEN 1 AND 900"),
    ("q04_window",
     "SELECT * FROM donate WHERE amount BETWEEN 1 AND 5000 WINDOW [500, 1500]"),
    ("q05_unindexed_eq", "SELECT * FROM transfer WHERE organization = 'org2'"),
    ("q06_ordered",
     "SELECT donor, amount FROM donate WHERE amount > 300 ORDER BY amount"),
    ("q07_ordered_limit",
     "SELECT donor, amount FROM donate WHERE amount > 100 "
     "ORDER BY amount DESC LIMIT 10"),
    ("q08_distinct", "SELECT DISTINCT organization FROM transfer"),
    ("q09_aggregate",
     "SELECT COUNT(*), SUM(amount) FROM donate WHERE amount > 200"),
    ("q10_join_indexed",
     "SELECT * FROM donate, transfer ON donate.amount = transfer.amount"),
    ("q11_join_unindexed",
     "SELECT * FROM transfer, distribute "
     "ON transfer.donor = distribute.donor"),
    ("q12_join_onoff",
     "SELECT * FROM onchain.distribute, offchain.doneeinfo "
     "ON distribute.donee = doneeinfo.donee"),
    ("q13_trace_operator", "TRACE OPERATOR = 'org1'"),
    ("q14_trace_windowed", "TRACE [500, 1500] OPERATOR = 'org2'"),
)


def build_engine() -> QueryEngine:
    """The leaderboard chain: seeded donation workload, explicit ts."""
    rng = random.Random(20260808)
    store = BlockStore()
    catalog = Catalog()
    genesis = make_genesis(0, list(ONCHAIN_SCHEMAS))
    store.append_block(genesis)
    catalog.apply_block(genesis)
    indexes = IndexManager(store, order=8, histogram_depth=16)
    prev = store.tip_hash
    tid = len(genesis.transactions)
    for height in range(1, NUM_BLOCKS + 1):
        txs = []
        for i in range(TXS_PER_BLOCK):
            ts = height * 100 + i
            sender = ORGS[rng.randrange(len(ORGS))]
            kind = rng.random()
            if kind < 0.4:
                tx = Transaction.create(
                    DONATE.name,
                    (f"donor{rng.randrange(12)}", "edu",
                     float(rng.randint(1, 1000))),
                    ts=ts, sender=sender,
                )
            elif kind < 0.7:
                tx = Transaction.create(
                    TRANSFER.name,
                    ("edu", f"donor{rng.randrange(12)}",
                     ORGS[rng.randrange(len(ORGS))],
                     float(rng.randint(1, 1000))),
                    ts=ts, sender=sender,
                )
            else:
                tx = Transaction.create(
                    DISTRIBUTE.name,
                    ("edu", f"donor{rng.randrange(12)}",
                     ORGS[rng.randrange(len(ORGS))],
                     DONEES[rng.randrange(len(DONEES))],
                     float(rng.randint(1, 500))),
                    ts=ts, sender=sender,
                )
            txs.append(tx.with_tid(tid))
            tid += 1
        block = Block.package(prev, height, height * 100 + 99, txs)
        store.append_block(block)
        prev = block.block_hash()
    indexes.create_layered_index("senid")
    indexes.create_layered_index("tname")
    indexes.create_layered_index("amount", table=DONATE.name, schema=DONATE)
    indexes.create_layered_index("amount", table=TRANSFER.name,
                                 schema=TRANSFER)
    indexes.create_layered_index("donee", table=DISTRIBUTE.name,
                                 schema=DISTRIBUTE)
    offchain = OffChainDatabase()
    offchain.create_table(
        "doneeinfo",
        [("donee", "string"), ("name", "string"), ("income", "decimal")],
    )
    offchain.insert(
        "doneeinfo",
        [("tom", "Tom", 100.0), ("amy", "Amy", 55.0), ("sue", "Sue", 80.0)],
    )
    return QueryEngine(store, indexes, catalog, offchain)


def run_corpus() -> dict[str, tuple[float, str]]:
    """query id -> (modelled ms of the chosen plan, its label)."""
    engine = build_engine()
    measured: dict[str, tuple[float, str]] = {}
    for qid, sql in CORPUS:
        result = engine.execute(sql)
        plan = result.plan
        label = plan.candidates[0].label if plan.candidates else plan.access_path
        measured[qid] = (plan.tracker.elapsed_ms(), label)
    return measured


def load_baseline(path: Path) -> Optional[dict[str, float]]:
    if not path.exists():
        return None
    baseline: dict[str, float] = {}
    for line in path.read_text().splitlines():
        if not line or line.startswith("#"):
            continue
        qid, ms = line.split("\t")[:2]
        if qid == "query":
            continue
        baseline[qid] = float(ms)
    return baseline


def write_baseline(measured: dict[str, tuple[float, str]]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        "# Leaderboard baseline: modelled ms of the optimizer-chosen plan",
        "# per corpus query.  Regenerate with:",
        "#   PYTHONPATH=src python benchmarks/leaderboard.py --write-baseline",
        "query\tmodelled_ms\tplan",
    ]
    for qid, (ms, label) in measured.items():
        lines.append(f"{qid}\t{ms:.3f}\t{label}")
    BASELINE_PATH.write_text("\n".join(lines) + "\n")


def write_leaderboard(
    measured: dict[str, tuple[float, str]],
    baseline: Optional[dict[str, float]],
) -> list[str]:
    """The sorted win/regression waterfall; returns its lines."""
    rows = []
    for qid, (ms, label) in measured.items():
        base = baseline.get(qid) if baseline else None
        if base is None or base == 0:
            delta = None
        else:
            delta = (ms - base) / base * 100.0
        rows.append((qid, ms, base, delta, label))
    # best win first; unbaselined queries sink to the bottom
    rows.sort(key=lambda r: (r[3] is None, r[3] if r[3] is not None else 0.0))
    lines = [
        "# Per-query plan leaderboard: modelled ms vs committed baseline",
        "query\tmodelled_ms\tbaseline_ms\tdelta_pct\tplan",
    ]
    for qid, ms, base, delta, label in rows:
        lines.append("\t".join([
            qid,
            f"{ms:.3f}",
            f"{base:.3f}" if base is not None else "-",
            f"{delta:+.1f}" if delta is not None else "-",
            label,
        ]))
    RESULTS_DIR.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text("\n".join(lines) + "\n")
    return lines


def check(
    measured: dict[str, tuple[float, str]],
    baseline: Optional[dict[str, float]],
) -> list[str]:
    """Gate failures: queries regressing > REGRESSION_LIMIT_PCT."""
    if baseline is None:
        return [f"no baseline at {BASELINE_PATH} - run --write-baseline "
                f"and commit it"]
    failures = []
    for qid, (ms, label) in measured.items():
        base = baseline.get(qid)
        if base is None:
            failures.append(f"{qid}: not in baseline - regenerate it")
            continue
        if base == 0:
            continue
        delta = (ms - base) / base * 100.0
        if delta > REGRESSION_LIMIT_PCT:
            failures.append(
                f"{qid}: {ms:.3f} ms vs baseline {base:.3f} ms "
                f"({delta:+.1f}% > {REGRESSION_LIMIT_PCT:.0f}%), "
                f"chosen plan: {label}"
            )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fail on any >20%% single-query regression")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current modelled costs as the baseline")
    args = parser.parse_args(argv)
    measured = run_corpus()
    if args.write_baseline:
        write_baseline(measured)
        print(f"baseline written: {BASELINE_PATH}")
        return 0
    baseline = load_baseline(BASELINE_PATH)
    lines = write_leaderboard(measured, baseline)
    print("\n".join(lines))
    if args.check:
        failures = check(measured, baseline)
        if failures:
            print("\nleaderboard gate FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\nleaderboard gate OK "
              f"(no query regressed > {REGRESSION_LIMIT_PCT:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
