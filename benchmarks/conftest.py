"""Shared helpers for the per-figure benchmark files.

Each ``test_figXX_*.py`` regenerates one table/figure of the paper's
evaluation section on scaled-down datasets: a module fixture builds the
figure's series, asserts the paper's qualitative shape (who wins, what
grows), writes the series to ``benchmarks/results/`` and prints it; a
pytest-benchmark test then times the figure's representative query.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"

Series = dict[str, list[tuple[Any, float]]]


def save_series(name: str, title: str, series: Series,
                x_label: str = "x", y_label: str = "latency_ms") -> None:
    """Persist one figure's series as a tab-separated table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    xs: list[Any] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    lines = [f"# {title}", "\t".join([x_label] + list(series))]
    for x in xs:
        row = [str(x)]
        for label in series:
            match = [y for px, y in series[label] if px == x]
            row.append(f"{match[0]:.3f}" if match else "-")
        lines.append("\t".join(row))
    lines.append(f"# ({y_label})")
    (RESULTS_DIR / f"{name}.tsv").write_text("\n".join(lines) + "\n")


def save_operator_breakdown(
    name: str, title: str,
    breakdowns: dict[str, list[dict[str, Any]]],
) -> None:
    """Persist per-operator cost profiles (one section per access method).

    ``breakdowns`` maps a method label to the rows produced by
    :func:`repro.bench.harness.operator_breakdown`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    columns = ("operator", "rows_in", "rows_out", "seeks",
               "page_transfers", "modelled_ms", "wall_ms")
    lines = [f"# {title}", "method\t" + "\t".join(columns)]
    for method, rows in breakdowns.items():
        for row in rows:
            label = "  " * row["depth"] + row["operator"]
            if row["detail"]:
                label += f"({row['detail']})"
            lines.append("\t".join([
                method, label,
                str(row["rows_in"]), str(row["rows_out"]),
                str(row["seeks"]), str(row["page_transfers"]),
                f"{row['modelled_ms']:.3f}", f"{row['wall_ms']:.3f}",
            ]))
    (RESULTS_DIR / f"{name}.tsv").write_text("\n".join(lines) + "\n")


def last_point(series: Series, label: str) -> float:
    """y value of the last (largest-x) point of one series."""
    return series[label][-1][1]


def first_point(series: Series, label: str) -> float:
    return series[label][0][1]
