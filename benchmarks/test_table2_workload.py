"""Table II - the seven BChainBench queries, end to end.

Runs every workload query (Q1's write path included) against one mixed
dataset and benchmarks the full Q2..Q7 read mix - the sanity baseline for
all per-figure benchmarks.
"""

import pytest

from conftest import save_series
from repro.bench.generator import RESULT_HIGH, RESULT_LOW
from repro.bench.harness import _build_mixed_dataset
from repro.bench.workload import ALL_QUERIES
from repro.bench.write_bench import kafka_factory, run_closed_loop
from repro.common.config import SebdbConfig
from repro.network import MessageBus

NUM_BLOCKS = 60
TXS_PER_BLOCK = 40
RESULT = 200


@pytest.fixture(scope="module")
def dataset():
    config = SebdbConfig.in_memory(block_size_txs=100_000)
    return _build_mixed_dataset(NUM_BLOCKS, TXS_PER_BLOCK, RESULT, 0, config)


READ_QUERIES = [
    ("Q2", "TRACE OPERATOR = 'org1'", ()),
    ("Q3", "TRACE [0, ?] OPERATOR = 'org1', OPERATION = 'transfer'",
     (NUM_BLOCKS * 1000,)),
    ("Q4", "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
     (RESULT_LOW, RESULT_HIGH)),
    ("Q5", "SELECT * FROM transfer, distribute "
           "ON transfer.organization = distribute.organization", ()),
    ("Q6", "SELECT * FROM onchain.distribute, offchain.doneeinfo "
           "ON distribute.donee = doneeinfo.donee", ()),
    ("Q7", "GET BLOCK ID = ?", (NUM_BLOCKS // 2,)),
]


def test_table2_workload(benchmark, dataset):
    assert len(ALL_QUERIES) == 7

    # Q1: the write path commits through consensus
    bus = MessageBus(seed=2)
    engine = kafka_factory(batch_txs=50, timeout_ms=50)(bus)
    sample = run_closed_loop(bus, engine, num_clients=20, txs_per_client=5)
    assert sample.committed == 100

    # Q2-Q7 all return the planted result sizes
    latencies = {}
    expected = {"Q2": RESULT // 4, "Q3": RESULT // 4, "Q4": RESULT // 4,
                "Q5": RESULT // 4, "Q6": RESULT // 4}
    for qid, sql, params in READ_QUERIES:
        result = dataset.node.query(sql, params=params)
        if qid in expected:
            assert len(result) == expected[qid], qid
        latencies[qid] = [(qid, result.cost.elapsed_ms if result.cost else 0.0)]
    save_series("table2", "Table II: workload mix (modelled ms)",
                latencies, x_label="query", y_label="ms")

    def read_mix():
        dataset.store.clear_caches()
        for _qid, sql, params in READ_QUERIES:
            dataset.node.query(sql, params=params)

    benchmark(read_mix)
