"""Fig 17 - authenticated query VO size, ALI vs basic approach.

Paper shape: the ALI's VO (result records + boundary records + sibling
digests) is always far smaller than the basic approach's (the entire block
window), and the basic VO grows linearly with the chain.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import figs17_19_authenticated
from repro.node.auth import AuthQueryServer

BLOCKS = [50, 100, 150]
RESULT = 300


@pytest.fixture(scope="module")
def auth_series():
    return figs17_19_authenticated(block_counts=BLOCKS, result_size=RESULT)


def test_fig17_shapes(benchmark, auth_series):
    vo_size = auth_series["fig17_vo_size_kb"]
    save_series("fig17", "Fig 17: VO size (KB)", vo_size,
                x_label="blocks", y_label="KB")
    assert last_point(vo_size, "ALI-Q2") < last_point(vo_size, "basic")
    assert last_point(vo_size, "ALI-Q4") < last_point(vo_size, "basic")
    # basic ships the whole chain - it grows linearly
    assert last_point(vo_size, "basic") > 2 * first_point(vo_size, "basic")

    dataset = build_tracking_dataset(BLOCKS[0], 40, RESULT)
    create_standard_indexes(dataset, authenticated=True)
    server = AuthQueryServer(dataset.node)

    vo = benchmark(lambda: server.trace_vo("org1"))
    assert vo.size_bytes() > 0
