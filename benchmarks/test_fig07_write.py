"""Fig 7 - write throughput and response time, KAFKA vs Tendermint.

Paper shape: Kafka throughput exceeds Tendermint's and keeps rising until
the single packager thread saturates (~400 clients); Tendermint throughput
is capped early by serial CheckTx/DeliverTx and its response time grows
with client count.
"""

import pytest

from conftest import save_series
from repro.bench.harness import fig7_write
from repro.bench.write_bench import (
    kafka_factory,
    run_closed_loop,
    stage_breakdown,
)
from repro.ledger import STAGES
from repro.network import MessageBus

CLIENTS = [40, 120, 240, 400]


@pytest.fixture(scope="module")
def series():
    data = fig7_write(client_counts=CLIENTS, txs_per_client=20)
    throughput = {
        engine: [(clients, tps) for clients, tps, _lat in points]
        for engine, points in data.items()
    }
    latency = {
        engine: [(clients, lat) for clients, _tps, lat in points]
        for engine, points in data.items()
    }
    save_series("fig07_throughput", "Fig 7a: write throughput (tps)",
                throughput, x_label="clients", y_label="tps")
    save_series("fig07_latency", "Fig 7b: response time (ms)",
                latency, x_label="clients", y_label="ms")
    return throughput, latency


def test_fig07_shapes(benchmark, series):
    throughput, latency = series
    kafka_tps = dict(throughput["kafka"])
    tm_tps = dict(throughput["tendermint"])
    # Kafka beats Tendermint at scale
    assert kafka_tps[400] > tm_tps[400]
    # Kafka throughput rises with client count
    assert kafka_tps[400] > kafka_tps[40]
    # Tendermint response time grows under load (resource competition)
    tm_lat = dict(latency["tendermint"])
    assert tm_lat[400] > tm_lat[40]
    # time one small kafka closed loop as the benchmark body
    def one_round():
        bus = MessageBus(seed=1)
        engine = kafka_factory()(bus)
        return run_closed_loop(bus, engine, num_clients=40, txs_per_client=5)

    sample = benchmark(one_round)
    assert sample.committed == 200


def test_fig07_stage_breakdown():
    """Fig 7 companion: where a committed batch's latency actually goes.

    Runs the closed loop against a real full node so the ledger
    pipeline's six stages do real work, then persists the per-stage
    profile (validate / persist / apply dominate; notify is near-free).
    """
    profile = stage_breakdown(num_clients=20, txs_per_client=10,
                              batch_txs=50)
    series = {
        "kafka": [(stage, profile[stage]["ms_per_call"])
                  for stage in STAGES],
    }
    save_series("fig07_stage_breakdown",
                "Fig 7c: write-path stage breakdown (ms per block)",
                series, x_label="stage", y_label="ms_per_block")
    # every stage ran once per committed block, over the whole workload
    blocks = profile["persist"]["calls"]
    assert blocks > 0
    for stage in STAGES:
        assert profile[stage]["calls"] == blocks, stage
    assert profile["validate"]["txs"] == 200
    assert profile["persist"]["txs"] == 200
    # notify has no listeners attached in this run: bookkeeping only
    assert profile["notify"]["txs"] == 0
