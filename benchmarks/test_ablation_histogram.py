"""Ablation - equal-depth histogram depth (layered index level 1).

The paper: "the height of histogram is configurable for different
precisions".  Deeper histograms make level-1 bucket bitmaps more
selective, so fewer candidate blocks survive the AND step for a narrow
range query; past a point the blocks genuinely contain matches and deeper
buckets stop helping.
"""

import pytest

from conftest import save_series
from repro.bench.generator import (
    GAUSSIAN,
    RESULT_HIGH,
    RESULT_LOW,
    build_range_dataset,
)
from repro.common.config import SebdbConfig

DEPTHS = [1, 2, 8, 32, 128]
NUM_BLOCKS = 60
TXS_PER_BLOCK = 40
RESULT = 120


def candidate_blocks_at_depth(depth: int) -> tuple[int, float]:
    config = SebdbConfig.in_memory(block_size_txs=100_000,
                                   histogram_depth=depth)
    # matches concentrate in a few blocks (Gaussian) so that level-1 CAN
    # discriminate; the remaining blocks only hold out-of-range noise
    dataset = build_range_dataset(
        NUM_BLOCKS, TXS_PER_BLOCK, RESULT, distribution=GAUSSIAN,
        variance=3.0, seed=7, config=config,
    )
    node = dataset.node
    index = node.indexes.create_layered_index(
        "amount", table="donate", schema=node.catalog.get("donate")
    )
    node.store.cost.reset()
    candidates = index.candidate_blocks_range(RESULT_LOW, RESULT_HIGH)
    before = node.store.cost.snapshot()
    result = node.query(
        "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
        params=(RESULT_LOW, RESULT_HIGH), method="layered",
    )
    delta = node.store.cost.snapshot().delta(before)
    assert len(result) == RESULT
    return len(candidates), delta.elapsed_ms


@pytest.fixture(scope="module")
def series():
    points_blocks = []
    points_ms = []
    for depth in DEPTHS:
        blocks, ms = candidate_blocks_at_depth(depth)
        points_blocks.append((depth, float(blocks)))
        points_ms.append((depth, ms))
    data = {"candidate_blocks": points_blocks, "modelled_ms": points_ms}
    save_series("ablation_histogram",
                "Ablation: histogram depth vs level-1 selectivity", data,
                x_label="depth", y_label="blocks / ms")
    return data


def test_histogram_depth_ablation(benchmark, series):
    blocks = dict(series["candidate_blocks"])
    # depth 1 = one bucket = no filtering: every data block is a candidate
    assert blocks[1] == NUM_BLOCKS
    # deeper histograms filter strictly better (here: monotone, saturating)
    assert blocks[128] <= blocks[8] <= blocks[1]
    assert blocks[128] < NUM_BLOCKS

    result = benchmark(lambda: candidate_blocks_at_depth(32))
    assert result[0] <= NUM_BLOCKS
