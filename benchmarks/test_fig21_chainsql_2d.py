"""Fig 21 - two-dimension tracking, SEBDB vs ChainSQL.

Paper shape: SEBDB's latency stays flat as the operator's transaction
count grows (the two-index intersection finds exactly the answers);
ChainSQL's grows linearly because GET_TRANSACTION ships every transaction
of the operator to the client for local filtering.
"""

import pytest

from conftest import first_point, last_point, save_series
from repro.baselines.chainsql import ChainSQLBaseline
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import fig21_chainsql_two_dim

OPERATOR_TXS = [500, 1000, 2000, 4000]
RESULT = 250


@pytest.fixture(scope="module")
def series():
    data = fig21_chainsql_two_dim(operator_tx_counts=OPERATOR_TXS,
                                  result_size=RESULT)
    save_series("fig21", "Fig 21: 2-D tracking, SEBDB vs ChainSQL", data,
                x_label="operator_txs")
    return data


def test_fig21_shapes(benchmark, series):
    # ChainSQL latency grows with the operator's transaction count
    assert last_point(series, "ChainSQL") > 2 * first_point(series, "ChainSQL")
    # SEBDB stays roughly flat
    assert last_point(series, "SEBDB") < 2 * first_point(series, "SEBDB")
    # and SEBDB wins at scale
    assert last_point(series, "SEBDB") < last_point(series, "ChainSQL")

    dataset = build_tracking_dataset(
        100, 60, RESULT, operator_extra=OPERATOR_TXS[-1] - RESULT,
        operation_extra=250,
    )
    create_standard_indexes(dataset)
    baseline = ChainSQLBaseline()
    baseline.replicate_chain(dataset.store)

    metrics = benchmark(
        lambda: baseline.track_two_dimensions("org1", "transfer")
    )
    assert metrics.rows_returned == RESULT
    assert metrics.rows_transferred == OPERATOR_TXS[-1]
