"""Fig 14 - Q5 on-chain join latency vs result size.

Paper shape: layered latency grows with the join result (more blocks join,
more tuples are read from disk); it still beats the hash-join baselines.
"""

import pytest

from conftest import save_series
from repro.bench.generator import build_join_dataset, create_standard_indexes
from repro.bench.harness import fig14_join_resultsize

SIZES = [100, 400, 800]
NUM_BLOCKS = 100
TABLE_ROWS = 1500
TXS_PER_BLOCK = 60

Q5 = ("SELECT * FROM transfer, distribute "
      "ON transfer.organization = distribute.organization")


@pytest.fixture(scope="module")
def series():
    data = fig14_join_resultsize(
        result_sizes=SIZES, num_blocks=NUM_BLOCKS, table_rows=TABLE_ROWS,
        txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig14", "Fig 14: Q5 on-chain join vs result size", data,
                x_label="result_pairs")
    return data


def test_fig14_shapes(benchmark, series):
    def at(label, x):
        return dict(series[label])[x]

    assert at("LU", SIZES[-1]) > at("LU", SIZES[0])   # layered grows
    assert at("LU", SIZES[-1]) < at("SU", SIZES[-1])  # still wins

    dataset = build_join_dataset(NUM_BLOCKS, TXS_PER_BLOCK, TABLE_ROWS,
                                 SIZES[0])
    create_standard_indexes(dataset)

    def layered_q5():
        dataset.store.clear_caches()
        return dataset.node.query(Q5, method="layered")

    result = benchmark(layered_q5)
    assert len(result) == SIZES[0]
