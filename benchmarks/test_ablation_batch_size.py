"""Ablation - consensus batch (block) size vs throughput and latency.

The Fig 7 setup fixes blocks at 200 transactions; this ablation sweeps
the knob: tiny batches pay the per-block overhead on every handful of
transactions (throughput suffers), huge batches amortize it but hold
early transactions hostage to the timeout (latency suffers at low load).
"""

import pytest

from conftest import save_series
from repro.bench.write_bench import run_closed_loop
from repro.consensus import KafkaOrderer
from repro.network import MessageBus

BATCH_SIZES = [10, 50, 200, 1000]
CLIENTS = 200


def run_at(batch_txs: int):
    bus = MessageBus(seed=13)
    engine = KafkaOrderer(bus, batch_txs=batch_txs, timeout_ms=200.0)
    for i in range(4):
        engine.register_replica(f"sink-{i}", lambda batch: None)
    return run_closed_loop(bus, engine, num_clients=CLIENTS,
                           txs_per_client=20)


@pytest.fixture(scope="module")
def series():
    tps_points = []
    lat_points = []
    for batch in BATCH_SIZES:
        sample = run_at(batch)
        tps_points.append((batch, sample.throughput_tps))
        lat_points.append((batch, sample.mean_latency_ms))
    data = {"throughput_tps": tps_points, "mean_latency_ms": lat_points}
    save_series("ablation_batch", "Ablation: Kafka batch size", data,
                x_label="batch_txs", y_label="tps / ms")
    return data


def test_batch_size_ablation(benchmark, series):
    tps = dict(series["throughput_tps"])
    # amortizing the per-block cost helps: 200-tx blocks beat 10-tx blocks
    assert tps[200] > tps[10]
    # all configurations commit the full workload
    sample = benchmark(lambda: run_at(200))
    assert sample.committed == CLIENTS * 20
