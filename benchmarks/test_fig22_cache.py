"""Fig 22 - block cache vs transaction cache.

Paper shape: the transaction cache wins Q2/Q4/Q5/Q6 (layered-index point
reads re-hit cached tuples) while the block cache wins Q7 (whole-block
fetches re-hit cached blocks).
"""

import pytest

from conftest import save_series
from repro.bench.harness import _build_mixed_dataset, fig22_cache
from repro.common.config import SebdbConfig

NUM_BLOCKS = 80
TXS_PER_BLOCK = 40
RESULT = 400


@pytest.fixture(scope="module")
def series():
    data = fig22_cache(num_blocks=NUM_BLOCKS, txs_per_block=TXS_PER_BLOCK,
                       result_size=RESULT, requests=10)
    save_series("fig22", "Fig 22: block cache vs transaction cache", data,
                x_label="query", y_label="ms/request")
    return data


def test_fig22_shapes(benchmark, series):
    block = dict(series["block-cache"])
    tx = dict(series["tx-cache"])
    # point-read queries: the transaction cache wins
    for qid in ("Q2", "Q4", "Q5", "Q6"):
        assert tx[qid] < block[qid], qid
    # whole-block query: the block cache wins
    assert block["Q7"] < tx["Q7"]

    config = SebdbConfig.in_memory(block_size_txs=100_000,
                                   cache_mode="transaction",
                                   cache_bytes=128 * 1024)
    dataset = _build_mixed_dataset(NUM_BLOCKS, TXS_PER_BLOCK, RESULT, 0,
                                   config)
    dataset.node.query("TRACE OPERATOR = 'org1'", method="layered")  # warm

    def cached_q2():
        return dataset.node.query("TRACE OPERATOR = 'org1'", method="layered")

    result = benchmark(cached_q2)
    assert len(result) == RESULT // 4
