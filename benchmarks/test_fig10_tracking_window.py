"""Fig 10 - Q3 two-dimension tracking vs shrinking time window.

Paper shape: the two-index variant (TI*) beats the single-index variant
(SI*) because it intersects postings instead of filtering client-side;
every method speeds up as the window shrinks.
"""

import pytest

from conftest import save_series
from repro.bench.generator import build_tracking_dataset, create_standard_indexes
from repro.bench.harness import fig10_tracking_window
from repro.query.plan import AccessPath
from repro.query.tracking import trace_transactions

EXPONENTS = [1, 2, 3, 4]
NUM_BLOCKS = 100


@pytest.fixture(scope="module")
def series():
    data = fig10_tracking_window(window_exponents=EXPONENTS,
                                 num_blocks=NUM_BLOCKS)
    save_series("fig10", "Fig 10: Q3 tracking vs time window", data,
                x_label="window")
    return data


def test_fig10_shapes(benchmark, series):
    # two indexes beat one on the full window
    assert series["TIU"][0][1] <= series["SIU"][0][1]
    assert series["TIG"][0][1] <= series["SIG"][0][1]
    # shrinking the window speeds everything up
    for label in ("SIU", "TIU"):
        assert series[label][-1][1] <= series[label][0][1]

    dataset = build_tracking_dataset(
        NUM_BLOCKS, 60, 100, operator_extra=900, operation_extra=900
    )
    create_standard_indexes(dataset)

    def two_index_q3():
        dataset.store.clear_caches()
        return trace_transactions(
            dataset.node.store, dataset.node.indexes,
            operator="org1", operation="transfer",
            method=AccessPath.LAYERED, use_operation_index=True,
        )

    result = benchmark(two_index_q3)
    assert len(result) == 100
