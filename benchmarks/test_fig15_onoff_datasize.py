"""Fig 15 - Q6 on-off chain join latency vs blockchain size.

Paper shape: the layered path (off-chain [min, max] pruning + per-block
sort-merge against sorted off-chain rows) wins; BG beats SG.
"""

import pytest

from conftest import last_point, save_series
from repro.bench.generator import build_onoff_dataset, create_standard_indexes
from repro.bench.harness import fig15_onoff_datasize

BLOCKS = [50, 100, 150]
ONCHAIN_ROWS = 600
RESULT_PAIRS = 300
TXS_PER_BLOCK = 60

Q6 = ("SELECT * FROM onchain.distribute, offchain.doneeinfo "
      "ON distribute.donee = doneeinfo.donee")


@pytest.fixture(scope="module")
def series():
    data = fig15_onoff_datasize(
        block_counts=BLOCKS, onchain_rows=ONCHAIN_ROWS,
        result_pairs=RESULT_PAIRS, txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig15", "Fig 15: Q6 on-off join vs blockchain size", data,
                x_label="blocks")
    return data


def test_fig15_shapes(benchmark, series):
    assert last_point(series, "LU") < last_point(series, "BU")
    assert last_point(series, "LU") < last_point(series, "SU")
    assert last_point(series, "BG") <= last_point(series, "BU")

    dataset = build_onoff_dataset(BLOCKS[-1], TXS_PER_BLOCK, ONCHAIN_ROWS,
                                  RESULT_PAIRS)
    create_standard_indexes(dataset)

    def layered_q6():
        dataset.store.clear_caches()
        return dataset.node.query(Q6, method="layered")

    result = benchmark(layered_q6)
    assert len(result) == RESULT_PAIRS
