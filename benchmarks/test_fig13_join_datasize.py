"""Fig 13 - Q5 on-chain join latency vs blockchain size.

Paper shape: the layered sort-merge join wins (only intersecting block
pairs are compared, only joining tuples are read); BG beats SG; LU grows
mildly with the chain as more block pairs must be intersected.
"""

import pytest

from conftest import last_point, save_operator_breakdown, save_series
from repro.bench.generator import build_join_dataset, create_standard_indexes
from repro.bench.harness import fig13_join_datasize, operator_breakdown

BLOCKS = [50, 100, 150]
TABLE_ROWS = 600
RESULT_PAIRS = 300
TXS_PER_BLOCK = 60

Q5 = ("SELECT * FROM transfer, distribute "
      "ON transfer.organization = distribute.organization")


@pytest.fixture(scope="module")
def series():
    data = fig13_join_datasize(
        block_counts=BLOCKS, table_rows=TABLE_ROWS,
        result_pairs=RESULT_PAIRS, txs_per_block=TXS_PER_BLOCK,
    )
    save_series("fig13", "Fig 13: Q5 on-chain join vs blockchain size",
                data, x_label="blocks")
    return data


def test_fig13_shapes(benchmark, series):
    assert last_point(series, "LU") < last_point(series, "BU")
    assert last_point(series, "LU") < last_point(series, "SU")
    assert last_point(series, "BG") <= last_point(series, "BU")

    dataset = build_join_dataset(BLOCKS[-1], TXS_PER_BLOCK, TABLE_ROWS,
                                 RESULT_PAIRS)
    create_standard_indexes(dataset)

    # where the Fig 13 latency goes, operator by operator and per method
    breakdowns = {
        method: operator_breakdown(dataset.node, Q5, method=method)
        for method in ("scan", "bitmap", "layered")
    }
    save_operator_breakdown(
        "fig13_operators",
        f"Fig 13: Q5 per-operator costs at {BLOCKS[-1]} blocks",
        breakdowns,
    )
    for method, rows in breakdowns.items():
        root = rows[0]
        assert root["rows_out"] == RESULT_PAIRS, (method, root)

    def layered_q5():
        dataset.store.clear_caches()
        return dataset.node.query(Q5, method="layered")

    result = benchmark(layered_q5)
    assert len(result) == RESULT_PAIRS
