"""Developer tooling for the SEBDB reproduction.

``tools.analysis`` is the pluggable static-analysis suite; the
top-level scripts in this directory are thin shims kept for muscle
memory and old CI invocations.
"""
