#!/usr/bin/env python3
"""Boundary lint: the query layer must do I/O through the scan interface.

Physical operators account every seek and page transfer to both the
query's cost tracker and their own, which only works when all block and
tuple reads flow through a :class:`repro.storage.scan.StoreScanner`
(``self.scanner`` on leaf operators).  A direct ``store.read_block(...)``
bypasses the per-operator trackers and silently breaks EXPLAIN ANALYZE's
invariant that operator costs sum to the query total.

Rules, applied to every module under ``src/repro/query``:

1. ``.read_block(...)`` / ``.read_transaction(...)`` / ``.iter_blocks(...)``
   may only be called on a scanner (a receiver named ``scanner`` or ending
   in ``.scanner``).
2. No access to private (``_``-prefixed) attributes of a block store (a
   receiver named ``store``/``_store`` or ending in ``.store``/``._store``).

Exit status 0 when clean; 1 with ``path:line: message`` diagnostics
otherwise.  Usage::

    python tools/lint_query_boundaries.py [root]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

QUERY_DIR = Path("src") / "repro" / "query"

#: methods that perform storage I/O and must be tracker-accounted
IO_METHODS = {"read_block", "read_transaction", "iter_blocks"}

#: receiver names that identify the scan interface
SCANNER_NAMES = {"scanner", "_scanner"}

#: receiver names that identify a block store
STORE_NAMES = {"store", "_store", "blockstore", "block_store"}


def _terminal_name(node: ast.expr) -> str:
    """The last identifier of a dotted receiver (``self.x.scanner`` -> ``scanner``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def check_source(source: str, path: str) -> list[str]:
    """All boundary violations in one module, as ``path:line: message``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        receiver = _terminal_name(node.value)
        if node.attr in IO_METHODS and receiver not in SCANNER_NAMES:
            problems.append(
                f"{path}:{node.lineno}: query code calls "
                f".{node.attr}() on {receiver or 'an expression'!r} - "
                f"route storage I/O through store.scanner(...) so "
                f"per-operator cost trackers see it"
            )
        elif (
            node.attr.startswith("_")
            and not node.attr.startswith("__")
            and receiver in STORE_NAMES
        ):
            problems.append(
                f"{path}:{node.lineno}: query code touches private "
                f"BlockStore attribute .{node.attr} - use the public "
                f"scan/cost interface"
            )
    return problems


def lint(root: Path) -> list[str]:
    problems: list[str] = []
    for path in sorted((root / QUERY_DIR).glob("*.py")):
        problems.extend(check_source(path.read_text(), str(path)))
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems = lint(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} boundary violation(s)")
        return 1
    print("query/storage boundary clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
