#!/usr/bin/env python3
"""Boundary lint: the query layer must do I/O through the scan interface.

Thin shim over the ``query-boundary`` rule of :mod:`tools.analysis`
(where the check now lives); kept so the PR-3 CLI, exit codes, and the
``check_source``/``lint``/``main`` module API all keep working::

    python tools/lint_query_boundaries.py [root]

Exit status 0 when clean; 1 with ``path:line: message`` diagnostics
otherwise.  Run ``python -m tools.analysis`` for the full suite.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.analysis.rules.query_boundary import QueryBoundaryRule, scan_tree  # noqa: E402

QUERY_DIR = Path("src") / "repro" / "query"

_RULE_ID = QueryBoundaryRule.id


def check_source(source: str, path: str) -> list[str]:
    """All boundary violations in one module, as ``path:line: message``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    return [
        f"{d.path}:{d.line}: {d.message}"
        for d in scan_tree(tree, path, _RULE_ID)
    ]


def lint(root: Path) -> list[str]:
    problems: list[str] = []
    for path in sorted((root / QUERY_DIR).glob("*.py")):
        problems.extend(check_source(path.read_text(), str(path)))
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else _REPO_ROOT
    problems = lint(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} boundary violation(s)")
        return 1
    print("query/storage boundary clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
