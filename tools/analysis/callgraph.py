"""Whole-program symbol table and conservative call graph.

PR 4's rules were per-module and syntactic: they could flag a
``time.time()`` they could *see*, but not one hidden behind a helper,
and they had no notion of "code reachable from a worker thread".  This
module lifts the suite to whole-program analysis:

* :class:`SymbolTable` - every function, method, nested function and
  lambda in the project, plus per-module import maps (``repro``-internal
  imports resolve to the defining module), per-class method tables with
  project-local MRO, and light type inference (``self.x = Cls(...)``
  assignments, parameter/attribute annotations, constructor calls bound
  to locals, return annotations);
* :class:`CallGraph` - a conservative over-approximation of "who may
  call whom": direct calls, ``self.method()`` resolved through the
  enclosing class's MRO, module-qualified calls, attribute calls typed
  through the inference above, property accesses, and *reference* edges
  for callables passed as arguments (``pool.map(fn, ...)`` marks ``fn``
  reachable even though nothing calls it by name here).

Resolution limits (documented, deliberate): dynamic dispatch through
``getattr``, callables stored in containers, monkey-patching and
``**kwargs`` forwarding are invisible; a method call on a receiver whose
type cannot be inferred produces no edge.  Rules built on the graph are
therefore *may-miss* on exotic call shapes but never crash on them, and
the repo's own idioms (plain classes, explicit imports, executor pools)
all resolve.

Build once per run via :attr:`tools.analysis.core.Project.graph`.
"""

from __future__ import annotations

import ast
import dataclasses
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: pseudo-function holding a module's top-level statements
MODULE_SCOPE = "<module>"

#: AST nodes that open a new lexical scope (never descended into when
#: collecting the nodes that belong to an enclosing function)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: import target: ("module", relpath) or ("name", relpath, original-name)
ImportTarget = Tuple

#: a receiver type: a project class, an external dotted name, or a module
_TypeInfo = Union["ClassInfo", str, Tuple[str, str]]


def own_scope_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Every AST node lexically inside ``node``'s own scope.

    Nested functions, lambdas and classes are their own scopes and are
    *not* descended into (the scope-opening node itself is yielded, so
    callers can still see that a nested def exists).
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots: List[ast.AST] = list(node.body)
    elif isinstance(node, ast.Lambda):
        roots = [node.body]
    elif isinstance(node, ast.Module):
        roots = list(node.body)
    else:
        roots = list(ast.iter_child_nodes(node))
    stack = list(reversed(roots))
    while stack:
        item = stack.pop()
        yield item
        if isinstance(item, _SCOPE_NODES):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(item))))


@dataclasses.dataclass
class ClassInfo:
    """One project class: methods, bases, and inferred attribute types."""

    relpath: str
    name: str
    node: ast.ClassDef
    #: base-class names as written (``Base``, ``mod.Base`` -> ``Base``)
    bases: List[str] = dataclasses.field(default_factory=list)
    #: method name -> function qualname
    methods: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: ``self.attr`` -> inferred type (ClassInfo or external dotted name)
    attr_types: Dict[str, _TypeInfo] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class FunctionInfo:
    """One function-like scope (function, method, lambda, module body)."""

    qualname: str
    relpath: str
    name: str
    node: ast.AST
    #: owning class, when the function is a method
    cls: Optional[ClassInfo] = None
    #: parameter names (including self)
    params: List[str] = dataclasses.field(default_factory=list)
    #: parameter name -> annotated type
    param_types: Dict[str, _TypeInfo] = dataclasses.field(default_factory=dict)
    #: local name -> qualname of a nested def / bound lambda
    local_funcs: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: local name -> inferred type from ``x = Cls(...)``
    var_types: Dict[str, _TypeInfo] = dataclasses.field(default_factory=dict)
    #: names declared ``global`` inside this function
    globals_declared: Set[str] = dataclasses.field(default_factory=set)
    #: names assigned locally (plain ``x = ...`` / loop targets)
    assigned: Set[str] = dataclasses.field(default_factory=set)
    #: lexically enclosing function (closures resolve through it)
    parent: Optional[str] = None
    #: decorator names as written (``property``, ``staticmethod``...)
    decorators: List[str] = dataclasses.field(default_factory=list)

    @property
    def is_property(self) -> bool:
        return any(d in ("property", "cached_property") for d in self.decorators)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclasses.dataclass(frozen=True)
class CallEdge:
    """One resolved edge: ``caller`` may transfer control to ``callee``."""

    caller: str
    callee: str
    line: int
    #: "call" direct invocation, "ref" callable passed as a value,
    #: "prop" property access
    kind: str


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _base_name(node: ast.expr) -> str:
    """``Base`` / ``mod.Base`` / ``Generic[T]`` -> the class-ish name."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _annotation_names(node: Optional[ast.expr]) -> List[str]:
    """Candidate class names inside an annotation, outermost first.

    ``Optional[ThreadPoolExecutor]`` -> ["Optional", "ThreadPoolExecutor"];
    string annotations are parsed (``"Clock"`` -> ["Clock"]).
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: List[str] = []
    for item in ast.walk(node):
        if isinstance(item, ast.Name):
            names.append(item.id)
        elif isinstance(item, ast.Attribute):
            names.append(item.attr)
    return names


class SymbolTable:
    """Every function and class in the project, with import resolution."""

    def __init__(self) -> None:
        #: function qualname -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: (relpath, name) -> qualname of a module-level function
        self.module_funcs: Dict[Tuple[str, str], str] = {}
        #: (relpath, class name) -> ClassInfo
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        #: relpath -> {local name -> ImportTarget} for project imports
        self.imports: Dict[str, Dict[str, ImportTarget]] = {}
        #: relpath -> {local name -> dotted external name}
        self.external_imports: Dict[str, Dict[str, str]] = {}
        #: relpath -> names assigned at module top level
        self.module_globals: Dict[str, Set[str]] = {}
        #: every loaded module relpath (for import resolution)
        self.relpaths: Set[str] = set()

    # -- lookups -----------------------------------------------------------

    def functions_in(self, relpath: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.relpath == relpath]

    def class_of(self, relpath: str, name: str) -> Optional[ClassInfo]:
        return self.classes.get((relpath, name))

    def resolve_method(self, cls: ClassInfo, method: str) -> Optional[str]:
        """Method lookup through the project-local MRO (cycle-safe)."""
        seen: Set[Tuple[str, str]] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            key = (current.relpath, current.name)
            if key in seen:
                continue
            seen.add(key)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                resolved = self.resolve_class_name(current.relpath, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def resolve_class_name(
        self, relpath: str, name: str
    ) -> Optional[_TypeInfo]:
        """A class name as visible from ``relpath``: local, imported, or
        external (returned as its dotted name)."""
        local = self.classes.get((relpath, name))
        if local is not None:
            return local
        target = self.imports.get(relpath, {}).get(name)
        if target is not None and target[0] == "name":
            imported = self.classes.get((target[1], target[2]))
            if imported is not None:
                return imported
            # re-exported through an __init__: chase one hop
            hop = self.imports.get(target[1], {}).get(target[2])
            if hop is not None and hop[0] == "name":
                return self.classes.get((hop[1], hop[2]))
        external = self.external_imports.get(relpath, {}).get(name)
        if external is not None:
            return external
        return None

    def resolve_imported_function(
        self, relpath: str, name: str
    ) -> Optional[str]:
        """A function name bound by a project-internal import."""
        target = self.imports.get(relpath, {}).get(name)
        if target is None:
            return None
        if target[0] == "name":
            qual = self.module_funcs.get((target[1], target[2]))
            if qual is not None:
                return qual
            hop = self.imports.get(target[1], {}).get(target[2])
            if hop is not None and hop[0] == "name":
                return self.module_funcs.get((hop[1], hop[2]))
        return None


def _resolve_module_path(
    parts: Sequence[str], relpaths: Set[str]
) -> Optional[str]:
    """Dotted module parts (relative to a tree root) -> loaded relpath."""
    if not parts:
        return None
    as_file = "/".join(parts) + ".py"
    if as_file in relpaths:
        return as_file
    as_pkg = "/".join(parts) + "/__init__.py"
    if as_pkg in relpaths:
        return as_pkg
    return None


class _ModuleIndexer:
    """First pass over one module: symbols, imports, type hints."""

    def __init__(self, table: SymbolTable, module) -> None:
        self.table = table
        self.module = module
        self.relpath = module.relpath
        #: package directory parts this module's relative imports anchor at
        parts = self.relpath.split("/")
        self.pkg_parts = parts[:-1] if parts[-1] != "__init__.py" else parts[:-1]

    # -- imports -----------------------------------------------------------

    def _record_import_module(self, dotted: str, asname: Optional[str]) -> None:
        parts = dotted.split(".")
        local = asname or parts[0]
        if parts[0] == "repro":
            rel = _resolve_module_path(parts[1:], self.table.relpaths)
            if rel is not None and asname is not None:
                self.table.imports[self.relpath][local] = ("module", rel)
        elif parts[0] == "tools":
            rel = _resolve_module_path(parts, self.table.relpaths)
            if rel is not None and asname is not None:
                self.table.imports[self.relpath][local] = ("module", rel)
        else:
            self.table.external_imports[self.relpath][local] = dotted

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        mod_parts = node.module.split(".") if node.module else []
        if node.level:
            if node.level - 1 > len(self.pkg_parts):
                return
            anchor = self.pkg_parts[: len(self.pkg_parts) - (node.level - 1)]
            base = anchor + mod_parts
        elif mod_parts and mod_parts[0] == "repro":
            base = mod_parts[1:]
        elif mod_parts and mod_parts[0] == "tools":
            base = mod_parts
        else:
            for alias in node.names:
                local = alias.asname or alias.name
                dotted = ".".join(mod_parts + [alias.name])
                self.table.external_imports[self.relpath][local] = dotted
            return
        for alias in node.names:
            local = alias.asname or alias.name
            as_module = _resolve_module_path(
                base + [alias.name], self.table.relpaths
            )
            if as_module is not None:
                self.table.imports[self.relpath][local] = ("module", as_module)
                continue
            owner = _resolve_module_path(base, self.table.relpaths)
            if owner is not None:
                self.table.imports[self.relpath][local] = (
                    "name", owner, alias.name
                )

    # -- symbols -----------------------------------------------------------

    def index(self) -> None:
        self.table.relpaths.add(self.relpath)
        self.table.imports.setdefault(self.relpath, {})
        self.table.external_imports.setdefault(self.relpath, {})
        tree = self.module.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._record_import_module(alias.name, alias.asname)
            elif isinstance(node, ast.ImportFrom):
                self._record_import_from(node)
        self.table.module_globals[self.relpath] = {
            target.id
            for stmt in tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            for target in (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if isinstance(target, ast.Name)
        }
        module_fn = self._add_function(
            MODULE_SCOPE, tree, cls=None, parent=None, prefix=""
        )
        self._walk_scope(tree, owner=module_fn, cls=None, prefix="")

    def _qualname(self, prefix: str, name: str) -> str:
        dotted = f"{prefix}.{name}" if prefix else name
        return f"{self.relpath}::{dotted}"

    def _add_function(
        self,
        name: str,
        node: ast.AST,
        cls: Optional[ClassInfo],
        parent: Optional[str],
        prefix: str,
    ) -> FunctionInfo:
        info = FunctionInfo(
            qualname=self._qualname(prefix, name),
            relpath=self.relpath,
            name=name,
            node=node,
            cls=cls,
            parent=parent,
        )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.decorators = [
                _decorator_name(d) for d in node.decorator_list
            ]
            args = node.args
            every = (
                list(getattr(args, "posonlyargs", []))
                + list(args.args) + list(args.kwonlyargs)
            )
            for arg in every:
                info.params.append(arg.arg)
                for candidate in _annotation_names(arg.annotation):
                    resolved = self.table.resolve_class_name(
                        self.relpath, candidate
                    )
                    if resolved is not None:
                        info.param_types[arg.arg] = resolved
                        break
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    info.params.append(extra.arg)
        elif isinstance(node, ast.Lambda):
            args = node.args
            info.params = [a.arg for a in args.args + args.kwonlyargs]
        self.table.functions[info.qualname] = info
        if cls is None and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and parent == f"{self.relpath}::{MODULE_SCOPE}":
            self.table.module_funcs[(self.relpath, name)] = info.qualname
        return info

    def _walk_scope(
        self,
        scope_node: ast.AST,
        owner: FunctionInfo,
        cls: Optional[ClassInfo],
        prefix: str,
    ) -> None:
        """Register defs/lambdas in one scope, then recurse into them."""
        lambda_names: Dict[int, str] = {}
        for node in own_scope_nodes(scope_node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lambda_names[id(node.value)] = target.id
        for node in own_scope_nodes(scope_node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(
                    node.name, node, cls=cls, parent=owner.qualname,
                    prefix=prefix,
                )
                if cls is not None:
                    # first def wins: a @prop.setter re-def keeps the getter
                    cls.methods.setdefault(node.name, info.qualname)
                owner.local_funcs[node.name] = info.qualname
                self._walk_scope(
                    node, owner=info, cls=None,
                    prefix=f"{prefix}.{node.name}.<locals>".lstrip("."),
                )
            elif isinstance(node, ast.Lambda):
                # line *and* column: two lambdas on one line (including one
                # nested in the other) must not collide into one symbol
                marker = f"<lambda@{node.lineno}:{node.col_offset}>"
                info = self._add_function(
                    marker, node, cls=None,
                    parent=owner.qualname, prefix=prefix,
                )
                bound = lambda_names.get(id(node))
                if bound:
                    owner.local_funcs[bound] = info.qualname
                self._walk_scope(
                    node, owner=info, cls=None,
                    prefix=f"{prefix}.{marker}.<locals>".lstrip("."),
                )
            elif isinstance(node, ast.ClassDef):
                if cls is None and owner.name == MODULE_SCOPE:
                    self._index_class(node)
                # nested classes: methods still become symbols
                elif cls is None:
                    self._index_class(node, prefix=prefix)
        self._collect_bindings(scope_node, owner)

    def _index_class(self, node: ast.ClassDef, prefix: str = "") -> None:
        cls = ClassInfo(
            relpath=self.relpath,
            name=node.name,
            node=node,
            bases=[b for b in (_base_name(base) for base in node.bases) if b],
        )
        self.table.classes[(self.relpath, node.name)] = cls
        class_prefix = f"{prefix}.{node.name}".lstrip(".") if prefix else node.name
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(
                    item.name, item, cls=cls,
                    parent=f"{self.relpath}::{MODULE_SCOPE}",
                    prefix=class_prefix,
                )
                cls.methods.setdefault(item.name, info.qualname)
                self._walk_scope(
                    item, owner=info, cls=None,
                    prefix=f"{class_prefix}.{item.name}.<locals>",
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                self._note_attr_annotation(cls, item.target.id, item.annotation)
        # ``self.x = ...`` / ``self.x: T`` sites inside every method
        for item in ast.walk(node):
            if isinstance(item, ast.AnnAssign) and self._is_self_attr(item.target):
                self._note_attr_annotation(cls, item.target.attr, item.annotation)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if self._is_self_attr(target):
                        inferred = self._infer_ctor_type(item.value)
                        if inferred is not None:
                            cls.attr_types.setdefault(target.attr, inferred)

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _note_attr_annotation(
        self, cls: ClassInfo, attr: str, annotation: Optional[ast.expr]
    ) -> None:
        for candidate in _annotation_names(annotation):
            resolved = self.table.resolve_class_name(self.relpath, candidate)
            if resolved is not None and not (
                isinstance(resolved, str)
                and resolved.split(".")[-1] in ("Optional", "Union", "List",
                                                "Dict", "Tuple", "Sequence")
            ):
                cls.attr_types.setdefault(attr, resolved)
                return

    def _infer_ctor_type(self, value: ast.expr) -> Optional[_TypeInfo]:
        """``Cls(...)`` on the right-hand side -> the constructed type."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None or not name[:1].isupper():
            return None
        return self.table.resolve_class_name(self.relpath, name)

    def _collect_bindings(self, scope_node: ast.AST, owner: FunctionInfo) -> None:
        for node in own_scope_nodes(scope_node):
            if isinstance(node, ast.Global):
                owner.globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            owner.assigned.add(leaf.id)
                if len(node.targets) == 1 and isinstance(
                    node.targets[0], ast.Name
                ):
                    inferred = self._infer_ctor_type(node.value)
                    if inferred is not None:
                        owner.var_types[node.targets[0].id] = inferred
                    elif self._is_self_attr(node.value) and owner.cls is not None:
                        aliased = owner.cls.attr_types.get(node.value.attr)
                        if aliased is not None:
                            owner.var_types[node.targets[0].id] = aliased
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                owner.assigned.add(node.target.id)
                for candidate in _annotation_names(node.annotation):
                    resolved = self.table.resolve_class_name(
                        self.relpath, candidate
                    )
                    if resolved is not None:
                        owner.var_types.setdefault(node.target.id, resolved)
                        break
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(node.target):
                    if isinstance(leaf, ast.Name):
                        owner.assigned.add(leaf.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for leaf in ast.walk(item.optional_vars):
                            if isinstance(leaf, ast.Name):
                                owner.assigned.add(leaf.id)


class CallGraph:
    """The project-wide conservative call graph (built by :func:`build`)."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, List[CallEdge]] = {}
        self._reverse: Optional[Dict[str, List[CallEdge]]] = None

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def reverse_edges(self) -> Dict[str, List[CallEdge]]:
        if self._reverse is None:
            reverse: Dict[str, List[CallEdge]] = {}
            for edges in self.edges.values():
                for edge in edges:
                    reverse.setdefault(edge.callee, []).append(edge)
            self._reverse = reverse
        return self._reverse

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function transitively reachable from ``roots`` (incl.)."""
        seen: Set[str] = set()
        queue = deque(r for r in roots if r in self.table.functions)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, ()):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append(edge.callee)
        return seen

    def path(self, root: str, target: str) -> List[str]:
        """One shortest qualname chain root -> target ([] when unreachable)."""
        if root == target:
            return [root]
        parents: Dict[str, str] = {root: ""}
        queue = deque([root])
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, ()):
                if edge.callee in parents:
                    continue
                parents[edge.callee] = current
                if edge.callee == target:
                    chain = [target]
                    while chain[-1] != root:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                queue.append(edge.callee)
        return []

    # -- resolution (shared with the rules) --------------------------------

    def infer_type(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> Optional[_TypeInfo]:
        """Static type of a receiver expression inside ``fn``, if known."""
        table = self.table
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.cls is not None:
                return fn.cls
            if expr.id in fn.var_types:
                return fn.var_types[expr.id]
            if expr.id in fn.param_types:
                return fn.param_types[expr.id]
            resolved = table.resolve_class_name(fn.relpath, expr.id)
            if resolved is not None:
                return resolved
            target = table.imports.get(fn.relpath, {}).get(expr.id)
            if target is not None and target[0] == "module":
                return ("module", target[1])
            return None
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(fn, expr.value)
            if isinstance(base, ClassInfo):
                return base.attr_types.get(expr.attr)
            if isinstance(base, tuple) and base[0] == "module":
                cls = table.classes.get((base[1], expr.attr))
                if cls is not None:
                    return cls
            return None
        if isinstance(expr, ast.Call):
            targets = self.resolve_callable(fn, expr.func)
            if len(targets) == 1:
                callee = table.functions.get(targets[0])
                if callee is not None and isinstance(
                    callee.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    for candidate in _annotation_names(callee.node.returns):
                        resolved = table.resolve_class_name(
                            callee.relpath, candidate
                        )
                        if resolved is not None:
                            return resolved
            return None
        return None

    def resolve_callable(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> List[str]:
        """Function symbols a callable expression inside ``fn`` may denote."""
        table = self.table
        if isinstance(expr, ast.Lambda):
            # lambdas are registered under their enclosing prefix; match on
            # the line:column marker, which is unique within a module
            marker = f"<lambda@{expr.lineno}:{expr.col_offset}>"
            return [
                q for q, f in table.functions.items()
                if f.relpath == fn.relpath and f.name == marker
            ]
        if isinstance(expr, ast.Name):
            name = expr.id
            # closures: this scope, then lexically enclosing scopes (the
            # seen-set guards against any qualname collision cycling)
            scope: Optional[FunctionInfo] = fn
            seen_scopes: Set[str] = set()
            while scope is not None and scope.qualname not in seen_scopes:
                seen_scopes.add(scope.qualname)
                if name in scope.local_funcs:
                    return [scope.local_funcs[name]]
                scope = (
                    table.functions.get(scope.parent)
                    if scope.parent else None
                )
            qual = table.module_funcs.get((fn.relpath, name))
            if qual is not None:
                return [qual]
            imported = table.resolve_imported_function(fn.relpath, name)
            if imported is not None:
                return [imported]
            cls = table.resolve_class_name(fn.relpath, name)
            if isinstance(cls, ClassInfo):
                ctor = table.resolve_method(cls, "__init__")
                return [ctor] if ctor else []
            return []
        if isinstance(expr, ast.Attribute):
            receiver = self.infer_type(fn, expr.value)
            if isinstance(receiver, ClassInfo):
                qual = table.resolve_method(receiver, expr.attr)
                return [qual] if qual else []
            if isinstance(receiver, tuple) and receiver[0] == "module":
                qual = table.module_funcs.get((receiver[1], expr.attr))
                if qual is not None:
                    return [qual]
                cls = table.classes.get((receiver[1], expr.attr))
                if cls is not None:
                    ctor = table.resolve_method(cls, "__init__")
                    return [ctor] if ctor else []
            return []
        return []

    def resolve_external(self, fn: FunctionInfo, expr: ast.expr) -> str:
        """Dotted external name a callable denotes ("" when not external).

        ``ThreadPoolExecutor`` imported from ``concurrent.futures`` ->
        ``concurrent.futures.ThreadPoolExecutor``; ``threading.Thread``
        through a module alias -> ``threading.Thread``.
        """
        table = self.table
        if isinstance(expr, ast.Name):
            return table.external_imports.get(fn.relpath, {}).get(expr.id, "")
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            module = table.external_imports.get(fn.relpath, {}).get(
                expr.value.id, ""
            )
            if module:
                return f"{module}.{expr.attr}"
        return ""


def build(project) -> CallGraph:
    """Index every module, then resolve every call/reference edge."""
    table = SymbolTable()
    indexers = []
    for module in project.modules:
        if module.tree is None:
            continue
        table.relpaths.add(module.relpath)
    for module in project.modules:
        if module.tree is None:
            continue
        indexer = _ModuleIndexer(table, module)
        indexer.index()
        indexers.append(indexer)
    graph = CallGraph(table)
    for fn in list(table.functions.values()):
        edges: List[CallEdge] = []
        for node in own_scope_nodes(fn.node):
            if isinstance(node, ast.Call):
                for target in graph.resolve_callable(fn, node.func):
                    edges.append(CallEdge(fn.qualname, target, node.lineno, "call"))
                for value in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(value, (ast.Name, ast.Attribute, ast.Lambda)):
                        for target in graph.resolve_callable(fn, value):
                            edges.append(
                                CallEdge(fn.qualname, target, node.lineno, "ref")
                            )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and fn.cls is not None
            ):
                qual = table.resolve_method(fn.cls, node.attr)
                if qual is not None and table.functions[qual].is_property:
                    edges.append(CallEdge(fn.qualname, qual, node.lineno, "prop"))
        if edges:
            # dedupe while keeping first-occurrence order
            seen: Set[Tuple[str, int, str]] = set()
            unique = []
            for edge in edges:
                key = (edge.callee, edge.line, edge.kind)
                if key not in seen:
                    seen.add(key)
                    unique.append(edge)
            graph.edges[fn.qualname] = unique
    return graph
