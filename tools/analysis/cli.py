"""Command line for the analysis suite (also the ``repro-lint`` script).

Exit status: 0 clean, 1 when any diagnostic fired (or the ratchet
regressed), 2 on usage errors.

Two CI-facing modes beyond plain text/json:

* ``--format github`` emits GitHub workflow annotations
  (``::error file=...,line=...::message``) so findings attach to the
  exact lines of a PR diff;
* ``--ratchet`` compares a *strict* run (per-rule ``excludes``
  ignored, so allowlisted paths are counted too) against the checked-in
  ``tools/analysis/baseline.json`` and fails on any new diagnostic -
  even inside a path the normal gate never inspects.  After an honest
  improvement, refresh the file with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core import REGISTRY, Diagnostic, run_analysis

#: repo root inferred from this file's location (tools/analysis/cli.py)
DEFAULT_ROOT = Path(__file__).resolve().parents[2]

#: ratchet baseline, relative to the analyzed root
BASELINE_RELPATH = Path("tools") / "analysis" / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="SEBDB static analysis: determinism, layering, "
        "fault-path discipline, query boundaries, call-graph concurrency "
        "and lifecycle checks.",
    )
    parser.add_argument(
        "root", nargs="?", type=Path, default=DEFAULT_ROOT,
        help="repository root (default: this checkout)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE[,RULE...]",
        help="run only these rules (repeatable and/or comma-separated); "
        "default: all",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="diagnostic output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--ratchet", action="store_true",
        help="strict-mode diagnostics-count ratchet: fail on any "
        "diagnostic not in the checked-in baseline (ignores --rule)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the ratchet baseline from a strict run and exit",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help=f"ratchet baseline path (default: <root>/{BASELINE_RELPATH})",
    )
    return parser


def _selected_rules(specs: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Expand repeatable/comma-separated ``--rule`` into an ordered list."""
    if not specs:
        return None
    out: List[str] = []
    for spec in specs:
        for rule_id in spec.split(","):
            rule_id = rule_id.strip()
            if rule_id and rule_id not in out:
                out.append(rule_id)
    return out or None


def _github_escape(text: str) -> str:
    """GitHub annotation payloads are %-encoded for newlines and %."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _print_github(diagnostics: Sequence[Diagnostic]) -> None:
    for diagnostic in diagnostics:
        print(
            f"::error file={diagnostic.path},line={diagnostic.line},"
            f"title=sebdb-analysis {diagnostic.rule}::"
            f"{_github_escape(diagnostic.message)}"
        )
    print(
        f"{len(diagnostics)} diagnostic(s)" if diagnostics else "analysis clean"
    )


# -- the diagnostics-count ratchet -------------------------------------------


def _strict_counts(root: Path) -> Dict[str, Dict[str, int]]:
    """path -> rule -> count, from a strict all-rules run."""
    counts: Dict[str, Dict[str, int]] = {}
    for diagnostic in run_analysis(root, None, strict=True):
        per_path = counts.setdefault(diagnostic.path, {})
        per_path[diagnostic.rule] = per_path.get(diagnostic.rule, 0) + 1
    return counts


def _write_baseline(root: Path, baseline_path: Path) -> int:
    counts = _strict_counts(root)
    payload = {
        "comment": (
            "Diagnostics-count ratchet for `python -m tools.analysis "
            "--ratchet`: strict-mode counts (per-rule excludes ignored) "
            "keyed by path then rule.  CI fails on any diagnostic above "
            "these counts - including inside allowlisted paths.  Refresh "
            "with --write-baseline after an honest improvement."
        ),
        "counts": {
            path: dict(sorted(counts[path].items()))
            for path in sorted(counts)
        },
        "total": sum(sum(c.values()) for c in counts.values()),
    }
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written: {baseline_path} ({payload['total']} "
          f"diagnostic(s) across {len(counts)} file(s))")
    return 0


def _run_ratchet(root: Path, baseline_path: Path) -> int:
    if not baseline_path.is_file():
        print(
            f"error: no ratchet baseline at {baseline_path}; create one "
            f"with --write-baseline",
            file=sys.stderr,
        )
        return 2
    baseline: Dict[str, Dict[str, int]] = json.loads(
        baseline_path.read_text()
    ).get("counts", {})
    current = _strict_counts(root)
    regressions: List[str] = []
    improvements: List[str] = []
    for path in sorted(set(baseline) | set(current)):
        base_rules = baseline.get(path, {})
        cur_rules = current.get(path, {})
        for rule in sorted(set(base_rules) | set(cur_rules)):
            base_n = base_rules.get(rule, 0)
            cur_n = cur_rules.get(rule, 0)
            if cur_n > base_n:
                regressions.append(
                    f"{path}: {rule}: {base_n} -> {cur_n} diagnostic(s)"
                )
            elif cur_n < base_n:
                improvements.append(
                    f"{path}: {rule}: {base_n} -> {cur_n} diagnostic(s)"
                )
    for line in improvements:
        print(f"improved: {line}")
    if improvements and not regressions:
        print("counts dropped - refresh the baseline with --write-baseline "
              "to lock the improvement in")
    if regressions:
        for line in regressions:
            print(f"::error title=sebdb-analysis ratchet::{_github_escape(line)}")
        print(f"ratchet FAILED: {len(regressions)} count(s) above baseline")
        return 1
    print("ratchet ok: no diagnostic above baseline")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from . import rules as _rules  # noqa: F401  (populate REGISTRY)

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            print(f"{rule_id}: {REGISTRY[rule_id].description}")
        return 0
    if not (args.root / "src" / "repro").is_dir():
        print(f"error: {args.root} does not look like the repo root "
              f"(no src/repro)", file=sys.stderr)
        return 2
    baseline_path = args.baseline or (args.root / BASELINE_RELPATH)
    if args.write_baseline:
        return _write_baseline(args.root, baseline_path)
    if args.ratchet:
        return _run_ratchet(args.root, baseline_path)
    selected = _selected_rules(args.rules)
    try:
        diagnostics = run_analysis(args.root, selected)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {
                "root": str(args.root),
                "rules": sorted(selected or REGISTRY),
                "count": len(diagnostics),
                "diagnostics": [d.to_json() for d in diagnostics],
            },
            indent=2,
        ))
    elif args.format == "github":
        _print_github(diagnostics)
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        if diagnostics:
            print(f"{len(diagnostics)} diagnostic(s)")
        else:
            print("analysis clean")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
