"""Command line for the analysis suite (also the ``repro-lint`` script).

Exit status: 0 clean, 1 when any diagnostic fired, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import REGISTRY, run_analysis

#: repo root inferred from this file's location (tools/analysis/cli.py)
DEFAULT_ROOT = Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="SEBDB static analysis: determinism, layering, "
        "fault-path discipline, query boundaries.",
    )
    parser.add_argument(
        "root", nargs="?", type=Path, default=DEFAULT_ROOT,
        help="repository root (default: this checkout)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE",
        help="run only this rule (repeatable); default: all",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from . import rules as _rules  # noqa: F401  (populate REGISTRY)

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            print(f"{rule_id}: {REGISTRY[rule_id].description}")
        return 0
    if not (args.root / "src" / "repro").is_dir():
        print(f"error: {args.root} does not look like the repo root "
              f"(no src/repro)", file=sys.stderr)
        return 2
    try:
        diagnostics = run_analysis(args.root, args.rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {
                "root": str(args.root),
                "rules": sorted(args.rules or REGISTRY),
                "count": len(diagnostics),
                "diagnostics": [d.to_json() for d in diagnostics],
            },
            indent=2,
        ))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        if diagnostics:
            print(f"{len(diagnostics)} diagnostic(s)")
        else:
            print("analysis clean")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
