"""``python -m tools.analysis`` entry point."""

import sys

from .cli import main

sys.exit(main())
