"""Repo-wide policy the rules enforce: layer bands and allowlists.

This is the one file to edit when the package layout grows.  Keep the
tables here in sync with DESIGN.md §8.
"""

from __future__ import annotations

#: Layer bands, bottom-up.  An import must target the same band or a
#: lower one; package-level cycles are rejected even inside a band.
#: ``""`` is the repro package root (``cli.py``, ``__init__.py``,
#: ``__main__.py``), which may import anything.
LAYER_BANDS: tuple[frozenset, ...] = (
    frozenset({"common"}),
    frozenset({"model", "crypto", "sqlparser"}),
    frozenset({"storage", "index", "mht"}),
    # "query" includes the query/optimizer subpackage; inside the band
    # the import order is logical -> plan -> optimizer -> engine/facades
    # (plan never imports optimizer - the module cycle check enforces it)
    frozenset({"query", "offchain", "ledger"}),
    frozenset({"consensus", "network"}),
    frozenset({"node"}),
    frozenset({"client", "baselines", "shard"}),
    frozenset({"faults"}),
    frozenset({"bench", "cli", ""}),
)

LAYER_OF: dict = {
    package: band for band, packages in enumerate(LAYER_BANDS) for package in packages
}

# -- determinism rule --------------------------------------------------------

#: paths (relative to src/repro) the determinism rule never inspects:
#: the benchmark layer measures real wall-clock on purpose, and
#: common/clock.py is the single sanctioned wrapper around it.
DETERMINISM_EXCLUDES: tuple = ("bench", "common/clock.py")

#: set/frozenset iteration is only policed on event-ordering paths
SET_ITERATION_SCOPE: tuple = ("consensus", "network", "faults", "ledger", "shard")

#: wall-clock entry points (module attribute calls)
WALL_CLOCK_ATTRS: frozenset = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: nondeterministic datetime constructors
DATETIME_ATTRS: frozenset = frozenset({"now", "utcnow", "today"})

#: module-level functions of ``random`` that use the shared global RNG
GLOBAL_RANDOM_ATTRS: frozenset = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "vonmisesvariate",
        "randbytes",
    }
)

#: entropy sources that can never be seeded
ENTROPY_CALLS: frozenset = frozenset(
    {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}
)

# -- fault-path exception discipline ----------------------------------------

FAULT_PATH_SCOPE: tuple = (
    "consensus", "network", "node", "client", "ledger", "shard"
)

#: builtins that must not be raised on faultable paths - callers catch
#: :class:`repro.common.errors.SebdbError`, and anything outside that
#: hierarchy sails straight past the retry/divergence machinery.
BANNED_RAISES: frozenset = frozenset(
    {
        "Exception",
        "BaseException",
        "RuntimeError",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "ArithmeticError",
        "AttributeError",
        "OSError",
        "IOError",
        "StopIteration",
        "EOFError",
    }
)

#: builtins that stay legal everywhere (contract stubs, invariants)
ALLOWED_BUILTIN_RAISES: frozenset = frozenset(
    {"NotImplementedError", "AssertionError"}
)

#: module (relative to src/repro) that defines the sanctioned hierarchy
ERRORS_MODULE: str = "common/errors.py"

# -- query boundary ----------------------------------------------------------

#: "query" is prefix-matched, so it already covers query/optimizer;
#: the explicit entry keeps the candidate search inside the boundary
#: (and the determinism scope) even if the subpackage ever moves out
QUERY_SCOPE: tuple = ("query", "query/optimizer")

#: methods that perform storage I/O and must be tracker-accounted
IO_METHODS: frozenset = frozenset({"read_block", "read_transaction", "iter_blocks"})

#: receiver names that identify the scan interface
SCANNER_NAMES: frozenset = frozenset({"scanner", "_scanner"})

#: receiver names that identify a block store
STORE_NAMES: frozenset = frozenset({"store", "_store", "blockstore", "block_store"})

# -- concurrency (call-graph) ------------------------------------------------

#: packages whose modules are scanned for worker spawn sites
CONCURRENCY_SCOPE: tuple = ("ledger", "shard", "node")

#: attribute calls whose first positional argument becomes a worker
#: entry point.  ``_pool_map`` is the pipeline's own serial-fallback
#: wrapper around ``Executor.map`` - callables handed to it run on the
#: pool exactly like a direct ``map``.
WORKER_SPAWN_METHODS: frozenset = frozenset({"submit", "map", "_pool_map"})

#: external classes whose ``target=`` keyword becomes a worker entry
THREAD_CLASSES: frozenset = frozenset({"threading.Thread", "Thread"})

#: a ``with``-statement guard whose receiver name contains this token
#: (case-insensitive) counts as a lock and exempts the writes under it
LOCK_NAME_TOKEN: str = "lock"

#: function qualnames allowed to write shared state from worker-reachable
#: code (sanctioned commit points).  Prefer a line suppression with a
#: justification next to the write; reserve this table for whole
#: functions that *are* the synchronization point.
CONCURRENCY_ALLOWED_WRITERS: frozenset = frozenset()

# -- lifecycle (call-graph) --------------------------------------------------

#: packages whose modules are scanned for resource constructions
LIFECYCLE_SCOPE: tuple = (
    "ledger", "shard", "node", "network", "consensus", "storage"
)

#: external classes whose instances hold OS threads and must be released
POOLED_RESOURCE_CLASSES: frozenset = frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "threading.Thread",
    }
)

#: methods that release a pooled resource when called on it
RELEASE_METHOD_NAMES: frozenset = frozenset(
    {"close", "shutdown", "stop", "join", "terminate", "cancel", "__exit__"}
)

#: method names that count as a teardown entry point on the owning class
#: (``crash`` is the fault-injection teardown on FullNode)
RELEASE_ENTRY_METHODS: frozenset = frozenset(
    {"close", "shutdown", "stop", "__exit__", "__del__", "crash"}
)

# -- determinism, interprocedural --------------------------------------------

#: excluded modules that are *sanctioned sinks*: calls into them never
#: taint in-scope callers (common/clock.py is the one blessed wrapper
#: around wall-clock time).  ``bench`` is excluded but NOT sanctioned,
#: so a src-tree module calling through a bench helper into
#: ``time.time()`` is reported at the in-scope call site.
DETERMINISM_SANCTIONED_SINKS: tuple = ("common/clock.py",)

# -- commit path -------------------------------------------------------------

#: the only package allowed to call ``append_block`` on a store: the
#: ledger pipeline's persist stage.  Everything else commits through
#: :class:`repro.ledger.LedgerPipeline`.
COMMIT_PATH_ALLOWED: tuple = ("ledger/",)

#: store methods that admit a block into the chain
COMMIT_METHODS: frozenset = frozenset({"append_block"})
