"""Pluggable static-analysis suite for the SEBDB reproduction.

Usage::

    python -m tools.analysis [--rule RULE ...] [--format text|json] [root]

Rules live in :mod:`tools.analysis.rules` and register themselves into
:data:`tools.analysis.core.REGISTRY`; repo-wide policy (layer bands,
allowlists) lives in :mod:`tools.analysis.policy`.  See DESIGN.md §8.
"""

from .core import (  # noqa: F401
    PARSE_RULE_ID,
    REGISTRY,
    Diagnostic,
    ModuleInfo,
    Project,
    Rule,
    register,
    run_analysis,
)

__all__ = [
    "PARSE_RULE_ID",
    "REGISTRY",
    "Diagnostic",
    "ModuleInfo",
    "Project",
    "Rule",
    "register",
    "run_analysis",
]
