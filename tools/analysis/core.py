"""Shared infrastructure for the SEBDB static-analysis suite.

One AST parse per module, shared by every rule.  A rule is a class with
an ``id``, a path ``scope`` (prefixes under ``src/repro``), optional
``excludes`` (a per-rule allowlist of paths the rule never inspects),
the source ``trees`` it covers (``src`` and/or ``tools`` — the analyzers
are subject to their own checks) and two hooks:

* :meth:`Rule.check_module` - called once per in-scope module with a
  pre-parsed :class:`ModuleInfo`;
* :meth:`Rule.check_project` - called once with the whole
  :class:`Project`, for cross-module properties (the layering DAG, the
  call-graph rules).

Whole-program rules reach the project-wide symbol table and
conservative call graph through :attr:`Project.graph`; it is built
lazily, once per run, by :mod:`tools.analysis.callgraph`.

Diagnostics carry ``(path, line, rule, message)`` and render as
``path:line: rule-id: message``.  A diagnostic is dropped when the
offending line carries an inline suppression comment::

    expr_that_violates()  # sebdb: allow[<rule>] justification...

``allow[rule-a,rule-b]`` suppresses several rules, ``allow[*]`` all of
them.  Suppressions are line-scoped on purpose: they must sit next to
the code they excuse, where review sees them.  They are also required
to stay *load-bearing*: a suppression naming a rule that ran but did
not fire on its line is itself reported (``unused-suppression``), so a
stale allowlist entry cannot silently outlive the violation it excused.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: package subtree every rule operates on, relative to the repo root
SRC_PREFIX = Path("src") / "repro"

#: secondary tree: the analyzers and lint helpers themselves
TOOLS_PREFIX = Path("tools")

_SUPPRESS_RE = re.compile(r"#\s*sebdb:\s*allow\[([\w*,\- ]+)\]")

#: rule id used for files that do not parse (always on, never suppressed)
PARSE_RULE_ID = "parse"

#: rule id for suppressions that no longer suppress anything
UNUSED_SUPPRESSION_RULE_ID = "unused-suppression"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what is wrong."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class ModuleInfo:
    """One parsed source module plus everything rules ask about it."""

    def __init__(
        self, path: Path, relpath: str, source: str, tree_label: str = "src"
    ) -> None:
        #: display path, as emitted in diagnostics (relative to repo root)
        self.path = path
        #: posix path relative to its tree root: ``consensus/pbft.py`` for
        #: the src tree, ``tools/analysis/core.py`` for the tools tree
        self.relpath = relpath
        #: which source tree the module came from ("src" or "tools")
        self.tree_label = tree_label
        self.source = source
        self.lines = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.suppressions = self._parse_suppressions()

    @property
    def package(self) -> str:
        """Top-level package under ``repro`` ("" for root modules)."""
        parts = Path(self.relpath).parts
        return parts[0] if len(parts) > 1 else ""

    def _parse_suppressions(self) -> Dict[int, set]:
        out: Dict[int, set] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                out.setdefault(lineno, set()).update(ids - {""})
        return out

    def suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        return bool(ids) and (rule_id in ids or "*" in ids)


class Project:
    """Every module under ``<root>/src/repro`` plus ``<root>/tools``."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules = list(modules)
        self._graph = None

    @classmethod
    def load(cls, root: Path) -> "Project":
        modules = []
        src = root / SRC_PREFIX
        if src.is_dir():
            for path in sorted(src.rglob("*.py")):
                relpath = path.relative_to(src).as_posix()
                display = path.relative_to(root)
                modules.append(ModuleInfo(display, relpath, path.read_text()))
        tools = root / TOOLS_PREFIX
        if tools.is_dir():
            for path in sorted(tools.rglob("*.py")):
                relpath = path.relative_to(root).as_posix()
                display = path.relative_to(root)
                modules.append(
                    ModuleInfo(display, relpath, path.read_text(), "tools")
                )
        return cls(root, modules)

    @property
    def graph(self):
        """The whole-program call graph, built lazily once per run."""
        if self._graph is None:
            from . import callgraph

            self._graph = callgraph.build(self)
        return self._graph

    def module_for_relpath(self, relpath: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


class Rule:
    """Base class; subclasses register with :func:`register`."""

    id: str = ""
    description: str = ""
    #: relpath prefixes under src/repro this rule inspects; () = everything
    scope: Sequence[str] = ()
    #: allowlist: relpath prefixes (or exact files) the rule skips
    excludes: Sequence[str] = ()
    #: source trees the rule covers; most rules reason about repro-internal
    #: layering/semantics and stay on "src"
    trees: Sequence[str] = ("src",)

    def wants(self, module: ModuleInfo, strict: bool = False) -> bool:
        if module.tree_label not in self.trees:
            return False
        rel = module.relpath
        if not strict and any(
            rel == ex or rel.startswith(ex.rstrip("/") + "/")
            for ex in self.excludes
        ):
            return False
        if not self.scope:
            return True
        return any(
            rel == sc or rel.startswith(sc.rstrip("/") + "/") for sc in self.scope
        )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        return ()

    # -- helpers shared by concrete rules ---------------------------------

    def diag(self, module: ModuleInfo, line: int, message: str) -> Diagnostic:
        return Diagnostic(str(module.path), line, self.id, message)


#: rule-id -> rule class; populated by :func:`register`
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def _unused_suppressions(
    project: Project,
    executed: Set[str],
    full_run: bool,
    used: Set[Tuple[str, int]],
) -> List[Diagnostic]:
    """Suppressions whose named rules ran but fired nothing on their line.

    A line is "used" as soon as *any* diagnostic was absorbed there, so
    ``allow[a,b]`` stays valid while either rule still fires.  ``allow[*]``
    is only judged on full-registry runs (a partial run cannot prove it
    dead), and ids outside ``executed`` are never judged.
    """
    out: List[Diagnostic] = []
    for module in project.modules:
        for line, ids in sorted(module.suppressions.items()):
            named = ids & executed
            judged = bool(named) or ("*" in ids and full_run)
            if not judged or (str(module.path), line) in used:
                continue
            label = ", ".join(sorted(ids))
            out.append(
                Diagnostic(
                    str(module.path),
                    line,
                    UNUSED_SUPPRESSION_RULE_ID,
                    f"suppression allow[{label}] no longer matches any "
                    f"diagnostic on this line; the violation it excused is "
                    f"gone - delete the comment (stale allowlist entries "
                    f"hide future regressions)",
                )
            )
    return out


def run_analysis(
    root: Path,
    rule_ids: Optional[Sequence[str]] = None,
    strict: bool = False,
) -> List[Diagnostic]:
    """Run the selected rules (default: all) over ``root``'s trees.

    ``strict`` makes :meth:`Rule.check_module` ignore per-rule
    ``excludes`` so allowlisted paths are inspected too (the ratchet's
    view of the world); line suppressions still apply — they are
    individually reviewed — and unused-suppression reporting is skipped
    because excluded-path hits would mark extra lines used.
    """
    from . import rules as _rules  # noqa: F401  (imports populate REGISTRY)

    selected = list(rule_ids) if rule_ids else sorted(REGISTRY)
    unknown = [rid for rid in selected if rid not in REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    project = Project.load(root)
    diagnostics: List[Diagnostic] = []
    #: (display path, line) pairs where a suppression absorbed a finding
    used_suppressions: Set[Tuple[str, int]] = set()
    by_path = {str(m.path): m for m in project.modules}
    for module in project.modules:
        if module.syntax_error is not None:
            exc = module.syntax_error
            diagnostics.append(
                Diagnostic(
                    str(module.path),
                    exc.lineno or 1,
                    PARSE_RULE_ID,
                    f"syntax error: {exc.msg}",
                )
            )
    instances = [REGISTRY[rid]() for rid in selected]
    for rule in instances:
        for module in project.modules:
            if module.tree is None or not rule.wants(module, strict=strict):
                continue
            for diagnostic in rule.check_module(module):
                if module.suppressed(rule.id, diagnostic.line):
                    used_suppressions.add((diagnostic.path, diagnostic.line))
                else:
                    diagnostics.append(diagnostic)
        for diagnostic in rule.check_project(project):
            module = by_path.get(diagnostic.path)
            if module is not None and module.suppressed(rule.id, diagnostic.line):
                used_suppressions.add((diagnostic.path, diagnostic.line))
                continue
            diagnostics.append(diagnostic)
    if not strict:
        executed = set(selected)
        full_run = executed == set(REGISTRY)
        diagnostics.extend(
            _unused_suppressions(project, executed, full_run, used_suppressions)
        )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule))
    return diagnostics
