"""Shared infrastructure for the SEBDB static-analysis suite.

One AST parse per module, shared by every rule.  A rule is a class with
an ``id``, a path ``scope`` (prefixes under ``src/repro``), optional
``excludes`` (a per-rule allowlist of paths the rule never inspects) and
two hooks:

* :meth:`Rule.check_module` - called once per in-scope module with a
  pre-parsed :class:`ModuleInfo`;
* :meth:`Rule.check_project` - called once with the whole
  :class:`Project`, for cross-module properties (the layering DAG).

Diagnostics carry ``(path, line, rule, message)`` and render as
``path:line: rule-id: message``.  A diagnostic is dropped when the
offending line carries an inline suppression comment::

    expr_that_violates()  # sebdb: allow[rule-id] justification...

``allow[rule-a,rule-b]`` suppresses several rules, ``allow[*]`` all of
them.  Suppressions are line-scoped on purpose: they must sit next to
the code they excuse, where review sees them.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

#: package subtree every rule operates on, relative to the repo root
SRC_PREFIX = Path("src") / "repro"

_SUPPRESS_RE = re.compile(r"#\s*sebdb:\s*allow\[([\w*,\- ]+)\]")

#: rule id used for files that do not parse (always on, never suppressed)
PARSE_RULE_ID = "parse"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what is wrong."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class ModuleInfo:
    """One parsed source module plus everything rules ask about it."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        #: display path, as emitted in diagnostics (relative to repo root)
        self.path = path
        #: posix path relative to ``src/repro`` ("consensus/pbft.py")
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self.suppressions = self._parse_suppressions()

    @property
    def package(self) -> str:
        """Top-level package under ``repro`` ("" for root modules)."""
        parts = Path(self.relpath).parts
        return parts[0] if len(parts) > 1 else ""

    def _parse_suppressions(self) -> Dict[int, set]:
        out: Dict[int, set] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                out.setdefault(lineno, set()).update(ids - {""})
        return out

    def suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        return bool(ids) and (rule_id in ids or "*" in ids)


class Project:
    """Every module under ``<root>/src/repro``, parsed once."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules = list(modules)

    @classmethod
    def load(cls, root: Path) -> "Project":
        src = root / SRC_PREFIX
        modules = []
        for path in sorted(src.rglob("*.py")):
            relpath = path.relative_to(src).as_posix()
            display = path.relative_to(root)
            info = ModuleInfo(display, relpath, path.read_text())
            modules.append(info)
        return cls(root, modules)


class Rule:
    """Base class; subclasses register with :func:`register`."""

    id: str = ""
    description: str = ""
    #: relpath prefixes under src/repro this rule inspects; () = everything
    scope: Sequence[str] = ()
    #: allowlist: relpath prefixes (or exact files) the rule skips
    excludes: Sequence[str] = ()

    def wants(self, module: ModuleInfo) -> bool:
        rel = module.relpath
        if any(rel == ex or rel.startswith(ex.rstrip("/") + "/") for ex in self.excludes):
            return False
        if not self.scope:
            return True
        return any(
            rel == sc or rel.startswith(sc.rstrip("/") + "/") for sc in self.scope
        )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        return ()

    # -- helpers shared by concrete rules ---------------------------------

    def diag(self, module: ModuleInfo, line: int, message: str) -> Diagnostic:
        return Diagnostic(str(module.path), line, self.id, message)


#: rule-id -> rule class; populated by :func:`register`
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def run_analysis(
    root: Path, rule_ids: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run the selected rules (default: all) over ``<root>/src/repro``."""
    from . import rules as _rules  # noqa: F401  (imports populate REGISTRY)

    selected = list(rule_ids) if rule_ids else sorted(REGISTRY)
    unknown = [rid for rid in selected if rid not in REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        )
    project = Project.load(root)
    diagnostics: List[Diagnostic] = []
    for module in project.modules:
        if module.syntax_error is not None:
            exc = module.syntax_error
            diagnostics.append(
                Diagnostic(
                    str(module.path),
                    exc.lineno or 1,
                    PARSE_RULE_ID,
                    f"syntax error: {exc.msg}",
                )
            )
    instances = [REGISTRY[rid]() for rid in selected]
    for rule in instances:
        for module in project.modules:
            if module.tree is None or not rule.wants(module):
                continue
            for diagnostic in rule.check_module(module):
                if not module.suppressed(rule.id, diagnostic.line):
                    diagnostics.append(diagnostic)
        for diagnostic in rule.check_project(project):
            by_path = {str(m.path): m for m in project.modules}
            module = by_path.get(diagnostic.path)
            if module is not None and module.suppressed(rule.id, diagnostic.line):
                continue
            diagnostics.append(diagnostic)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule))
    return diagnostics
