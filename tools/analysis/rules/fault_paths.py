"""Rule ``fault-path``: exception discipline on faultable paths.

The chaos harness (PR 1-2) injects faults into ``consensus/``,
``network/``, ``node/`` and ``client/``; everything above them recovers
by catching :class:`repro.common.errors.SebdbError` subclasses
(``RetryExhausted``, ``DivergenceError``, ``NetworkError``...).  Two
things break that contract:

* a bare ``except:`` (or an ``except Exception:`` whose body only
  passes) swallows injected faults, turning a crash the invariant
  checker would catch into silent divergence;
* raising a builtin (``ValueError``, ``RuntimeError``...) on a
  faultable path sails straight past every ``except SebdbError``
  recovery handler.

``raise`` of a name defined in ``repro/common/errors.py`` is fine, as
are re-raises, ``NotImplementedError`` and ``AssertionError``.  Locally
defined exception classes are accepted when they subclass a sanctioned
name.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .. import policy
from ..core import Diagnostic, ModuleInfo, Project, Rule, register


def _errors_hierarchy(project: Project) -> Set[str]:
    """Class names defined by ``repro/common/errors.py``."""
    for module in project.modules:
        if module.relpath == policy.ERRORS_MODULE and module.tree is not None:
            return {
                node.name
                for node in ast.walk(module.tree)
                if isinstance(node, ast.ClassDef)
            }
    return set()


def _handler_only_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the body neither raises, logs, returns, nor records."""
    for stmt in handler.body:
        if not isinstance(stmt, (ast.Pass, ast.Continue)) and not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        ):
            return False
    return True


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def check_module_tree(
    module: ModuleInfo, sanctioned: Set[str], rule: Rule
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    # locally defined exception classes that extend a sanctioned base are
    # themselves sanctioned
    local_ok: Set[str] = set(sanctioned)
    grew = True
    classes = [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]
    while grew:
        grew = False
        for cls in classes:
            if cls.name in local_ok:
                continue
            bases = {
                base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
                for base in cls.bases
            }
            if bases & local_ok:
                local_ok.add(cls.name)
                grew = True

    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                out.append(rule.diag(
                    module, node.lineno,
                    "bare except: swallows injected faults and "
                    "KeyboardInterrupt; catch a SebdbError subclass",
                ))
                continue
            caught = node.type
            names = set()
            if isinstance(caught, ast.Name):
                names = {caught.id}
            elif isinstance(caught, ast.Tuple):
                names = {
                    el.id for el in caught.elts if isinstance(el, ast.Name)
                }
            if names & {"Exception", "BaseException"} and _handler_only_swallows(node):
                out.append(rule.diag(
                    module, node.lineno,
                    "except Exception with a pass-only body silently swallows "
                    "injected faults; handle, log, or re-raise",
                ))
        elif isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name is None:
                continue  # bare re-raise or raising a variable
            if name in policy.ALLOWED_BUILTIN_RAISES or name in local_ok:
                continue
            if name in policy.BANNED_RAISES:
                out.append(rule.diag(
                    module, node.lineno,
                    f"raise {name} on a faultable path; recovery handlers "
                    f"catch SebdbError - raise a repro.common.errors "
                    f"subclass instead",
                ))
    return out


@register
class FaultPathRule(Rule):
    id = "fault-path"
    description = (
        "no bare/swallowed excepts; faultable paths raise "
        "repro.common.errors subclasses"
    )
    scope = policy.FAULT_PATH_SCOPE

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        sanctioned = _errors_hierarchy(project)
        out: List[Diagnostic] = []
        for module in project.modules:
            if module.tree is None or not self.wants(module):
                continue
            out.extend(check_module_tree(module, sanctioned, self))
        return out
