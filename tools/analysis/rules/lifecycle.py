"""Rule ``lifecycle``: every thread-owning resource has a shutdown path.

PR 8 fixed a leaked ``sebdb-ledger`` worker thread by hand: a
``FullNode.crash()`` tore down the node without shutting the ledger's
executor, and the orphaned pool kept the process alive.  This rule
turns that review finding into a machine-checked invariant over the
whole-program call graph:

* a pooled resource (``ThreadPoolExecutor``, ``ProcessPoolExecutor``,
  ``threading.Thread``) constructed and stored on ``self`` must be
  releasable: the owning class needs a teardown entry point
  (``close``/``shutdown``/``stop``/``__exit__``/``__del__``/``crash``)
  from which a release call on that attribute - directly
  (``self._executor.shutdown()``) or through a local alias
  (``ex = self._executor; ex.shutdown()``) - is reachable on the call
  graph;
* a resource bound to a local name must be released in the same
  function, handed off (returned, stored, passed along - ownership
  transfers), or opened as a context manager;
* a construction that is neither bound nor a context manager nor
  returned has no handle to release it and is flagged outright.

Storage segment files are out of scope on purpose: ``SegmentStore``
opens files in ``with`` blocks only and holds no persistent handles,
so there is nothing to leak (checked when this rule shipped; add the
class to :data:`tools.analysis.policy.POOLED_RESOURCE_CLASSES`-style
tables if that ever changes).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .. import policy
from ..callgraph import ClassInfo, FunctionInfo, own_scope_nodes
from ..core import Diagnostic, ModuleInfo, Project, Rule, register


def _short(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _is_release_call(node: ast.AST) -> Optional[ast.Attribute]:
    """``<recv>.shutdown(...)`` and friends -> the receiver expression."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in policy.RELEASE_METHOD_NAMES
    ):
        return node.func
    return None


@register
class LifecycleRule(Rule):
    id = "lifecycle"
    description = (
        "every constructed executor/thread is reachable from a "
        "close()/shutdown() teardown path"
    )
    scope = policy.LIFECYCLE_SCOPE

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project.graph
        table = graph.table
        for module in project.modules:
            if module.tree is None or not self.wants(module):
                continue
            for fn in table.functions_in(module.relpath):
                yield from self._check_function(module, fn, graph)

    def _check_function(
        self, module: ModuleInfo, fn: FunctionInfo, graph
    ) -> Iterator[Diagnostic]:
        pooled: Dict[int, Tuple[ast.Call, str]] = {}
        for node in own_scope_nodes(fn.node):
            if isinstance(node, ast.Call):
                external = graph.resolve_external(fn, node.func)
                if external in policy.POOLED_RESOURCE_CLASSES:
                    pooled[id(node)] = (node, external)
        if not pooled:
            return
        handled: Set[int] = set()
        for node in own_scope_nodes(fn.node):
            if isinstance(node, ast.Assign) and id(node.value) in pooled:
                call, external = pooled[id(node.value)]
                if len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and fn.cls is not None
                    ):
                        handled.add(id(call))
                        yield from self._check_self_attr(
                            module, fn, graph, call, external, target.attr
                        )
                    elif isinstance(target, ast.Name):
                        handled.add(id(call))
                        yield from self._check_local(
                            module, fn, call, external, target.id
                        )
                    else:
                        # stored into a container/attr chain: ownership
                        # handed off; the holder is checked at its site
                        handled.add(id(call))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if id(node.value) in pooled and isinstance(node.target, ast.Name):
                    call, external = pooled[id(node.value)]
                    handled.add(id(call))
                    yield from self._check_local(
                        module, fn, call, external, node.target.id
                    )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if id(item.context_expr) in pooled:
                        handled.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                if id(node.value) in pooled:
                    handled.add(id(node.value))
        for call, external in pooled.values():
            if id(call) not in handled:
                yield self.diag(
                    module, call.lineno,
                    f"{_short(external)} constructed but never bound to a "
                    f"releasable name, used as a context manager, or "
                    f"returned - nothing can ever shut it down",
                )

    # -- self-attribute resources -----------------------------------------

    def _check_self_attr(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        graph,
        call: ast.Call,
        external: str,
        attr: str,
    ) -> Iterator[Diagnostic]:
        cls = fn.cls
        assert cls is not None
        table = graph.table
        entries = [
            qual
            for qual in (
                table.resolve_method(cls, name)
                for name in sorted(policy.RELEASE_ENTRY_METHODS)
            )
            if qual is not None
        ]
        if not entries:
            yield self.diag(
                module, call.lineno,
                f"self.{attr} = {_short(external)}(...) but {cls.name} has "
                f"no teardown entry point "
                f"({'/'.join(sorted(policy.RELEASE_ENTRY_METHODS))}); the "
                f"pool leaks its threads when the object is dropped",
            )
            return
        for qual in graph.reachable(entries):
            callee = table.functions.get(qual)
            if callee is not None and self._releases_attr(callee, attr):
                return
        yield self.diag(
            module, call.lineno,
            f"self.{attr} = {_short(external)}(...) is never released: no "
            f"{attr}.shutdown()/close()/join() site is reachable from "
            f"{cls.name}'s teardown methods "
            f"({', '.join(sorted(q.split('::', 1)[1] for q in entries))})",
        )

    @staticmethod
    def _releases_attr(fn: FunctionInfo, attr: str) -> bool:
        """Does ``fn`` release ``<something>.attr`` directly or via alias?"""
        aliases: Set[str] = set()
        for node in own_scope_nodes(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == attr
            ):
                aliases.add(node.targets[0].id)
        for node in own_scope_nodes(fn.node):
            receiver = _is_release_call(node)
            if receiver is None:
                continue
            value = receiver.value
            if isinstance(value, ast.Attribute) and value.attr == attr:
                return True
            if isinstance(value, ast.Name) and value.id in aliases:
                return True
        return False

    # -- locally-bound resources ------------------------------------------

    def _check_local(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        call: ast.Call,
        external: str,
        name: str,
    ) -> Iterator[Diagnostic]:
        escaped = False
        for node in own_scope_nodes(fn.node):
            receiver = _is_release_call(node)
            if (
                receiver is not None
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == name
            ):
                return
            if isinstance(node, ast.Return) and self._mentions(node.value, name):
                escaped = True
            elif isinstance(node, ast.Assign) and self._mentions(node.value, name):
                if not (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == name
                ):
                    escaped = True
            elif isinstance(node, ast.Call):
                arg_exprs = list(node.args) + [k.value for k in node.keywords]
                if any(self._mentions(arg, name) for arg in arg_exprs):
                    escaped = True
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == name
                    for item in node.items
                ):
                    return
        if not escaped:
            yield self.diag(
                module, call.lineno,
                f"local {name!r} holds a {_short(external)} that is neither "
                f"released in this function nor handed off; its worker "
                f"threads outlive the call",
            )

    @staticmethod
    def _mentions(expr: Optional[ast.expr], name: str) -> bool:
        if expr is None:
            return False
        return any(
            isinstance(node, ast.Name) and node.id == name
            for node in ast.walk(expr)
        )
