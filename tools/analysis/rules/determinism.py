"""Rule ``determinism``: the simulation must replay bit-for-bit.

Every experiment and chaos test relies on three pillars: seeded
``random.Random`` instances, the simulated :class:`repro.common.clock.Clock`,
and timestamp-ordered bus delivery.  This rule forbids the constructs
that silently break them:

* wall-clock reads - ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()`` and friends, ``datetime.now()/utcnow()``,
  ``date.today()`` (the sanctioned wrapper is ``common/clock.py``,
  which is allowlisted, as is the whole ``bench/`` layer that measures
  real wall-clock on purpose);
* unseedable or unseeded entropy - ``os.urandom``, ``uuid.uuid1/4``,
  the ``secrets`` module, ``random.SystemRandom``, ``random.Random()``
  with no seed, and the module-level ``random.*`` functions that share
  one hidden global RNG;
* iteration over ``set``/``frozenset`` on event-ordering paths
  (``consensus/``, ``network/``, ``faults/``) - set order depends on
  the per-process hash seed, so a loop over one reorders protocol
  events between runs.  Membership tests and ``sorted(...)`` stay fine.

The per-module pass is syntactic; :meth:`DeterminismRule.check_project`
adds the interprocedural escalation on top of the whole-program call
graph: direct nondeterminism hits inside *excluded* modules (``bench``)
are turned into taint, propagated backward through excluded helpers,
and any in-scope function calling into a tainted helper is reported at
its own call site with the full helper chain in the message.  Calls
into :data:`tools.analysis.policy.DETERMINISM_SANCTIONED_SINKS`
(``common/clock.py``) never taint - that wrapper is the sanctioned way
to touch wall-clock.  The rule also covers the ``tools`` tree: the
analyzers pass their own checks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .. import policy
from ..callgraph import own_scope_nodes
from ..core import Diagnostic, ModuleInfo, Project, Rule, register

#: call wrappers that materialize iteration order from their argument
#: (order-insensitive consumers - sorted, len, sum, min, max, any, all,
#: set, frozenset - are deliberately not listed and never flagged)
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "iter", "enumerate", "reversed"}

_SET_ANNOTATION_NAMES = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
}


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """``x: set[...]`` / ``Set[...]`` / ``typing.Set[...]`` etc."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].rsplit(".", 1)[-1].strip()
        return head in _SET_ANNOTATION_NAMES
    return False


def _is_set_expr(node: ast.expr, set_names: Set[str], set_attrs: Set[str]) -> bool:
    """Is ``node`` statically known to evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr in set_attrs
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra: s | t, s & t, s - t, s ^ t
        return _is_set_expr(node.left, set_names, set_attrs) or _is_set_expr(
            node.right, set_names, set_attrs
        )
    return False


class _ImportTracker(ast.NodeVisitor):
    """Aliases under which the interesting stdlib modules/names are bound."""

    def __init__(self) -> None:
        self.module_aliases: Dict[str, Set[str]] = {
            "time": set(), "random": set(), "os": set(), "uuid": set(),
            "secrets": set(), "datetime": set(),
        }
        #: local name -> (module, original name) for from-imports
        self.from_imports: Dict[str, tuple] = {}
        self.secret_import_lines: List[int] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".", 1)[0]
            if top in self.module_aliases:
                self.module_aliases[top].add(alias.asname or alias.name)
            if top == "secrets":
                self.secret_import_lines.append(node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".", 1)[0]
        if module in self.module_aliases:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (module, alias.name)
        if module == "secrets":
            self.secret_import_lines.append(node.lineno)


@register
class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "no wall-clock, unseeded or global RNGs, raw entropy, or set "
        "iteration on event-ordering paths"
    )
    excludes = policy.DETERMINISM_EXCLUDES
    #: the analyzers are subject to their own determinism discipline
    trees = ("src", "tools")

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        tracker = _ImportTracker()
        tracker.visit(module.tree)
        out: List[Diagnostic] = []
        for line in tracker.secret_import_lines:
            out.append(
                self.diag(module, line, "the secrets module is unseedable entropy; "
                          "derive randomness from a seeded random.Random")
            )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                out.extend(self._check_call(module, node, tracker))
        if module.package in policy.SET_ITERATION_SCOPE:
            out.extend(self._check_set_iteration(module))
        return out

    # -- interprocedural escalation ---------------------------------------

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        """Report in-scope callers that reach nondeterminism through
        excluded helpers, with the helper chain in the message."""
        graph = project.graph
        table = graph.table
        excluded = {
            m.relpath: m
            for m in project.modules
            if m.tree is not None
            and m.tree_label == "src"
            and not self.wants(m)
            and m.relpath not in policy.DETERMINISM_SANCTIONED_SINKS
        }
        #: tainted helper qualname -> human chain ending at the primitive
        tainted: Dict[str, str] = {}
        for relpath, module in excluded.items():
            tracker = _ImportTracker()
            tracker.visit(module.tree)
            for fn in table.functions_in(relpath):
                for node in own_scope_nodes(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for hit in self._check_call(module, node, tracker):
                        if module.suppressed(self.id, hit.line):
                            continue
                        primitive = hit.message.split(";", 1)[0]
                        tainted.setdefault(
                            fn.qualname,
                            f"{fn.name}() [{hit.path}:{hit.line}: {primitive}]",
                        )
        # backward propagation through excluded helpers (shortest chains
        # first: BFS over the reverse call graph)
        frontier = list(tainted)
        while frontier:
            next_frontier: List[str] = []
            for callee in frontier:
                for edge in graph.reverse_edges().get(callee, ()):
                    caller = table.functions.get(edge.caller)
                    if (
                        caller is None
                        or caller.relpath not in excluded
                        or edge.caller in tainted
                    ):
                        continue
                    tainted[edge.caller] = (
                        f"{caller.name}() -> {tainted[callee]}"
                    )
                    next_frontier.append(edge.caller)
            frontier = next_frontier
        if not tainted:
            return
        reported: Set[tuple] = set()
        for module in project.modules:
            if module.tree is None or not self.wants(module):
                continue
            for fn in table.functions_in(module.relpath):
                for edge in graph.callees(fn.qualname):
                    chain = tainted.get(edge.callee)
                    if chain is None:
                        continue
                    key = (str(module.path), edge.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.diag(
                        module, edge.line,
                        f"reaches nondeterminism through an excluded "
                        f"helper: {chain}; route timing through "
                        f"common/clock.py or keep bench-only helpers off "
                        f"deterministic paths",
                    )

    # -- wall clock / entropy ---------------------------------------------

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, tracker: _ImportTracker
    ) -> Iterable[Diagnostic]:
        func = node.func
        # module-attribute calls: time.time(), random.choice(), os.urandom()...
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver, attr = func.value.id, func.attr
            if receiver in tracker.module_aliases["time"] and attr in policy.WALL_CLOCK_ATTRS:
                yield self.diag(
                    module, node.lineno,
                    f"wall-clock call time.{attr}(); use the simulated "
                    f"Clock (common/clock.py) so runs replay bit-for-bit",
                )
                return
            if receiver in tracker.module_aliases["random"]:
                if attr in policy.GLOBAL_RANDOM_ATTRS:
                    yield self.diag(
                        module, node.lineno,
                        f"random.{attr}() uses the hidden process-global RNG; "
                        f"construct random.Random(seed) and thread it through",
                    )
                    return
                if attr == "SystemRandom":
                    yield self.diag(
                        module, node.lineno,
                        "random.SystemRandom is OS entropy and can never be "
                        "seeded; use random.Random(seed)",
                    )
                    return
                if attr == "Random" and not node.args and not node.keywords:
                    yield self.diag(
                        module, node.lineno,
                        "random.Random() without a seed draws from OS entropy; "
                        "pass an explicit seed",
                    )
                    return
            for mod, name in policy.ENTROPY_CALLS:
                if receiver in tracker.module_aliases[mod] and attr == name:
                    yield self.diag(
                        module, node.lineno,
                        f"{mod}.{name}() is unseedable entropy; derive bytes "
                        f"from a seeded random.Random instead",
                    )
                    return
            if attr in policy.DATETIME_ATTRS and (
                receiver in {"datetime", "date"}
                or receiver in tracker.module_aliases["datetime"]
            ):
                yield self.diag(
                    module, node.lineno,
                    f"datetime wall-clock call .{attr}(); timestamps must "
                    f"come from the simulated Clock",
                )
                return
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if (
                func.attr in policy.DATETIME_ATTRS
                and inner.attr in {"datetime", "date"}
                and isinstance(inner.value, ast.Name)
                and inner.value.id in tracker.module_aliases["datetime"]
            ):
                yield self.diag(
                    module, node.lineno,
                    f"datetime wall-clock call .{func.attr}(); timestamps must "
                    f"come from the simulated Clock",
                )
                return
        # bare names bound by from-imports: from time import perf_counter
        if isinstance(func, ast.Name) and func.id in tracker.from_imports:
            mod, original = tracker.from_imports[func.id]
            if mod == "time" and original in policy.WALL_CLOCK_ATTRS:
                yield self.diag(
                    module, node.lineno,
                    f"wall-clock call {original}() (from time); use the "
                    f"simulated Clock (common/clock.py)",
                )
            elif mod == "random" and original in policy.GLOBAL_RANDOM_ATTRS:
                yield self.diag(
                    module, node.lineno,
                    f"{original}() (from random) uses the hidden process-global "
                    f"RNG; construct random.Random(seed)",
                )
            elif mod == "random" and original == "SystemRandom":
                yield self.diag(
                    module, node.lineno,
                    "SystemRandom is OS entropy and can never be seeded",
                )
            elif mod == "random" and original == "Random" and not node.args and not node.keywords:
                yield self.diag(
                    module, node.lineno,
                    "Random() without a seed draws from OS entropy; pass an "
                    "explicit seed",
                )
            elif (mod, original) in policy.ENTROPY_CALLS:
                yield self.diag(
                    module, node.lineno,
                    f"{original}() (from {mod}) is unseedable entropy",
                )
            elif mod == "datetime" and func.id in {"datetime", "date"}:
                pass  # constructing datetime(2019, 1, 1) is deterministic

    # -- set iteration on event paths -------------------------------------

    def _check_set_iteration(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        class_set_attrs: Dict[ast.ClassDef, Set[str]] = {}
        for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
            attrs: Set[str] = set()
            for node in ast.walk(cls):
                if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                    target = node.target
                    if isinstance(target, ast.Name):
                        attrs.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
            class_set_attrs[cls] = attrs

        out: List[Diagnostic] = []
        scopes: List[tuple] = [(module.tree, None)]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = None
                for cls, attrs in class_set_attrs.items():
                    if any(item is node for item in ast.walk(cls)):
                        owner = attrs
                scopes.append((node, owner))

        for scope, self_attrs in scopes:
            out.extend(
                self._scan_scope(module, scope, self_attrs or set())
            )
        return out

    def _scan_scope(
        self, module: ModuleInfo, scope: ast.AST, set_attrs: Set[str]
    ) -> Iterable[Diagnostic]:
        """One function body (or the module top level): infer then flag."""
        # collect nodes of this scope only (do not descend into nested
        # functions or classes - they are scanned as their own scope)
        flat: List[ast.AST] = []
        stack: List[ast.AST] = list(getattr(scope, "body", []))
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            flat.append(item)
            for child in ast.iter_child_nodes(item):
                stack.append(child)

        set_names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = scope.args
            all_args = list(arguments.args) + list(arguments.kwonlyargs)
            all_args += list(getattr(arguments, "posonlyargs", []))
            for arg in all_args:
                if _annotation_is_set(arg.annotation):
                    set_names.add(arg.arg)
        for item in flat:
            if isinstance(item, ast.Assign) and _is_set_expr(item.value, set_names, set_attrs):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(item, ast.AnnAssign) and _annotation_is_set(item.annotation):
                if isinstance(item.target, ast.Name):
                    set_names.add(item.target.id)

        def flag(expr: ast.expr, how: str):
            if _is_set_expr(expr, set_names, set_attrs):
                yield self.diag(
                    module, expr.lineno,
                    f"iteration over a set ({how}) on an event-ordering path; "
                    f"set order varies with the hash seed - use sorted(...) or "
                    f"an ordered container",
                )

        for item in flat:
            if isinstance(item, (ast.For, ast.AsyncFor)):
                yield from flag(item.iter, "for loop")
            elif isinstance(item, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in item.generators:
                    yield from flag(gen.iter, "comprehension")
            elif isinstance(item, ast.Call):
                func = item.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_SENSITIVE_WRAPPERS
                    and item.args
                ):
                    yield from flag(item.args[0], f"{func.id}(...)")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not item.args
                    and _is_set_expr(func.value, set_names, set_attrs)
                ):
                    yield self.diag(
                        module, item.lineno,
                        "set.pop() removes an arbitrary element on an "
                        "event-ordering path; pop from a sorted or ordered "
                        "container",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and item.args
                ):
                    yield from flag(item.args[0], "str.join(...)")
