"""Rule ``commit-path``: exactly one path admits blocks into the chain.

The ledger pipeline's persist stage is the only code allowed to call
``append_block`` on a block store.  Every other layer - consensus
deliveries, node bootstrap, gossip adoption, sync catch-up, benchmarks -
commits through :class:`repro.ledger.LedgerPipeline`, which brackets the
segment append with write-ahead BEGIN/COMMIT records and fires the apply
and notify stages.  A direct ``store.append_block(...)`` elsewhere
bypasses the commit log (a crash there leaves an unresolvable torn
tail), skips signature validation, and desynchronizes the catalog,
indexes and stage counters.

The allowlist lives in :data:`tools.analysis.policy.COMMIT_PATH_ALLOWED`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .. import policy
from ..core import Diagnostic, ModuleInfo, Rule, register


def scan_tree(tree: ast.AST, path: str, rule_id: str) -> List[Diagnostic]:
    """All commit-path violations in one parsed module."""
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr in policy.COMMIT_METHODS:
            out.append(Diagnostic(
                path, node.lineno, rule_id,
                f"direct .{node.attr}() call outside the ledger package - "
                f"every block commits through "
                f"repro.ledger.LedgerPipeline so the write-ahead commit "
                f"record brackets the segment append",
            ))
    return out


@register
class CommitPathRule(Rule):
    id = "commit-path"
    description = "only the ledger pipeline appends blocks to a store"
    excludes = policy.COMMIT_PATH_ALLOWED

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        return scan_tree(module.tree, str(module.path), self.id)
