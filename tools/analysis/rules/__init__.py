"""Importing this package registers every built-in rule."""

from . import determinism, fault_paths, layering, query_boundary

__all__ = ["determinism", "fault_paths", "layering", "query_boundary"]
