"""Importing this package registers every built-in rule."""

from . import commit_path, determinism, fault_paths, layering, query_boundary

__all__ = [
    "commit_path",
    "determinism",
    "fault_paths",
    "layering",
    "query_boundary",
]
