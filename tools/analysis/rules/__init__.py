"""Importing this package registers every built-in rule."""

from . import (
    commit_path,
    concurrency,
    determinism,
    fault_paths,
    layering,
    lifecycle,
    query_boundary,
)

__all__ = [
    "commit_path",
    "concurrency",
    "determinism",
    "fault_paths",
    "layering",
    "lifecycle",
    "query_boundary",
]
