"""Rule ``layering``: imports must follow the package DAG.

The repo's layer bands, bottom-up (see ``policy.LAYER_BANDS`` and
DESIGN.md §8)::

    common
    model / crypto / sqlparser
    storage / index / mht
    query / offchain
    consensus / network
    node
    client / baselines
    faults
    bench / <package root>

A module may import its own package, any lower band, or a sibling in
the same band - but never upward, and the package-level import graph
must stay acyclic even inside a band (``index -> mht`` is fine until
``mht -> index`` appears).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import policy
from ..core import Diagnostic, ModuleInfo, Project, Rule, register

#: (source package, target package, display path, line)
Edge = Tuple[str, str, str, int]


def _module_package_path(module: ModuleInfo) -> List[str]:
    """Package path of a module relative to the ``repro`` root."""
    parts = list(PurePosixPath(module.relpath).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
        return parts  # the package itself
    return parts[:-1]


def module_edges(module: ModuleInfo) -> List[Edge]:
    """Every repro-internal import edge declared by ``module``."""
    source_pkg = module.package
    pkg_path = _module_package_path(module)
    edges: List[Edge] = []

    def add(target: Optional[str], line: int) -> None:
        if target is None or target == source_pkg:
            return
        edges.append((source_pkg, target, str(module.path), line))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] != "repro":
                    continue
                add(parts[1] if len(parts) > 1 else "", node.lineno)
        elif isinstance(node, ast.ImportFrom):
            mod_parts = (node.module or "").split(".") if node.module else []
            if node.level == 0:
                if not mod_parts or mod_parts[0] != "repro":
                    continue
                resolved = mod_parts[1:]
            else:
                anchor = pkg_path[: len(pkg_path) - (node.level - 1)]
                if node.level - 1 > len(pkg_path):
                    continue  # import reaches above the package root
                resolved = anchor + mod_parts
            if resolved:
                add(resolved[0], node.lineno)
            else:
                # ``from . import x`` at the repro root / ``from .. import x``:
                # each alias names a top-level package
                for alias in node.names:
                    add(alias.name, node.lineno)
    return edges


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    """One package-level cycle as ``[a, b, ..., a]``, or ``None``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {pkg: WHITE for pkg in graph}
    stack: List[str] = []

    def dfs(pkg: str) -> Optional[List[str]]:
        color[pkg] = GREY
        stack.append(pkg)
        for nxt in sorted(graph.get(pkg, ())):
            if color.get(nxt, BLACK) == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, BLACK) == WHITE:
                found = dfs(nxt)
                if found:
                    return found
        stack.pop()
        color[pkg] = BLACK
        return None

    for pkg in sorted(graph):
        if color[pkg] == WHITE:
            found = dfs(pkg)
            if found:
                return found
    return None


@register
class LayeringRule(Rule):
    id = "layering"
    description = "imports follow the package DAG; no upward or cyclic imports"

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        band_names = [
            "/".join(sorted(p for p in band if p) or ["<root>"])
            for band in policy.LAYER_BANDS
        ]
        all_edges: List[Edge] = []
        out: List[Diagnostic] = []
        for module in project.modules:
            if module.tree is None or module.tree_label not in self.trees:
                continue
            all_edges.extend(module_edges(module))

        for source, target, path, line in all_edges:
            if source not in policy.LAYER_OF:
                out.append(Diagnostic(
                    path, line, self.id,
                    f"package {source!r} is not in the layer map "
                    f"(tools/analysis/policy.py); add it to a band",
                ))
                continue
            if target not in policy.LAYER_OF:
                out.append(Diagnostic(
                    path, line, self.id,
                    f"import of unmapped package {target!r}; add it to "
                    f"the layer map (tools/analysis/policy.py)",
                ))
                continue
            src_band, dst_band = policy.LAYER_OF[source], policy.LAYER_OF[target]
            if dst_band > src_band:
                out.append(Diagnostic(
                    path, line, self.id,
                    f"upward import: {source or '<root>'} "
                    f"(band {band_names[src_band]}) must not import "
                    f"{target or '<root>'} (band {band_names[dst_band]})",
                ))

        graph: Dict[str, Set[str]] = {}
        edge_site: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for source, target, path, line in all_edges:
            if source == "" or target == "":
                continue  # the repro root legitimately aggregates everything
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
            edge_site.setdefault((source, target), (path, line))
        cycle = _find_cycle(graph)
        if cycle:
            closing = (cycle[-2], cycle[-1])
            path, line = edge_site[closing]
            out.append(Diagnostic(
                path, line, self.id,
                "package import cycle: " + " -> ".join(cycle)
                + "; break the upward edge",
            ))
        return out
