"""Rule ``concurrency``: no unguarded shared-state writes off a worker.

PRs 7-8 made the ledger hot path genuinely parallel: signature
verification chunks and prepared effects run on a
``ThreadPoolExecutor``.  Python's GIL keeps single bytecodes atomic,
but read-modify-write sequences (``self.counter += 1``) and multi-field
updates interleave freely - the classic lost-update bug, and one that
only bites under load.

This rule makes the safe pattern machine-checked:

1. find every *worker spawn site* in the concurrency scope
   (``ledger``/``shard``/``node``): callables handed to
   ``Executor.submit``/``Executor.map`` (and the pipeline's
   ``_pool_map`` wrapper), and ``threading.Thread(target=...)``;
2. compute the transitive call set reachable from those entry points
   over the whole-program call graph (so a helper two hops away is
   just as suspect as the entry itself);
3. inside every reachable function, flag writes to state a worker may
   share with other workers or the coordinating thread: ``self.*``
   attribute stores, mutations of *parameter* attributes (the object
   was handed in from the spawning thread), and module-global writes.

A write is exempt when it happens under a ``with <...lock...>:`` guard
(any receiver whose name contains "lock"), when it is a ``self.*``
store inside ``__init__``/``__new__`` (the object under construction
is unshared until published), when its function is listed in
:data:`tools.analysis.policy.CONCURRENCY_ALLOWED_WRITERS`, or when the
line carries a reviewed ``sebdb: allow[...]`` suppression.  The last
is the right tool for provably task-local objects the analyzer cannot
see are unshared (e.g. a per-chunk result accumulator created by the
worker itself).

Resolution limits: writes through containers (``d[k] = v``) and
mutating method calls (``lst.append``) are not flagged - receiver
aliasing makes them noise-prone; the rule goes after the
read-modify-write attribute stores where lost updates actually
happened in this codebase.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .. import policy
from ..callgraph import FunctionInfo, own_scope_nodes
from ..core import Diagnostic, ModuleInfo, Project, Rule, register

#: scope-opening nodes never descended into while scanning one function
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _lock_like(expr: ast.expr) -> bool:
    """Does a ``with`` item look like a lock acquisition?"""
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = ""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    return policy.LOCK_NAME_TOKEN in name.lower()


def _guarded_nodes(fn_node: ast.AST) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, under_lock)`` for every node in the function's own
    scope, tracking enclosing ``with <lock>:`` blocks."""

    def walk(node: ast.AST, guarded: bool) -> Iterator[Tuple[ast.AST, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            child_guarded = guarded
            if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                _lock_like(item.context_expr) for item in child.items
            ):
                child_guarded = True
            yield child, child_guarded
            yield from walk(child, child_guarded)

    roots: List[ast.AST]
    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        roots = list(fn_node.body)
    elif isinstance(fn_node, ast.Module):
        roots = list(fn_node.body)
    else:  # lambdas cannot contain statements, hence no writes
        return
    for root in roots:
        child_guarded = isinstance(root, (ast.With, ast.AsyncWith)) and any(
            _lock_like(item.context_expr) for item in root.items
        )
        yield root, child_guarded
        yield from walk(root, child_guarded)


def _attribute_base(node: ast.expr) -> Optional[Tuple[str, str]]:
    """Unwrap a pure attribute chain: ``a.b.c`` -> ("a", "a.b.c").

    Chains broken by subscripts or calls return None - writes through a
    container slot are a different (unflagged) shape.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return current.id, ".".join(parts)


@register
class ConcurrencyRule(Rule):
    id = "concurrency"
    description = (
        "no unguarded shared-state writes in code reachable from a "
        "worker-pool or thread entry point"
    )
    scope = policy.CONCURRENCY_SCOPE

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = project.graph
        table = graph.table
        #: worker entry qualname -> (spawning function, spawn line)
        entries: Dict[str, Tuple[str, int]] = {}
        for module in project.modules:
            if module.tree is None or not self.wants(module):
                continue
            for fn in table.functions_in(module.relpath):
                for qual, line in self._spawn_targets(graph, fn):
                    entries.setdefault(qual, (fn.qualname, line))
        if not entries:
            return
        reached = graph.reachable(entries)
        modules_by_relpath = {m.relpath: m for m in project.modules}
        reported: set = set()
        for qual in sorted(reached):
            fn = table.functions[qual]
            if qual in policy.CONCURRENCY_ALLOWED_WRITERS:
                continue
            module = modules_by_relpath.get(fn.relpath)
            if module is None or module.tree_label != "src":
                continue
            entry = self._nearest_entry(graph, entries, qual)
            for diagnostic in self._shared_writes(module, fn, graph, entry):
                key = (diagnostic.path, diagnostic.line)
                if key not in reported:
                    reported.add(key)
                    yield diagnostic

    # -- spawn-site discovery ---------------------------------------------

    def _spawn_targets(
        self, graph, fn: FunctionInfo
    ) -> Iterator[Tuple[str, int]]:
        for node in own_scope_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in policy.WORKER_SPAWN_METHODS
                and node.args
            ):
                for qual in graph.resolve_callable(fn, node.args[0]):
                    yield qual, node.lineno
            if graph.resolve_external(fn, func) in policy.THREAD_CLASSES:
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        for qual in graph.resolve_callable(fn, keyword.value):
                            yield qual, node.lineno

    @staticmethod
    def _nearest_entry(graph, entries, qual: str) -> Tuple[str, str]:
        """(entry qualname, rendered chain entry -> ... -> qual)."""
        best: Tuple[str, List[str]] = ("", [])
        for entry in entries:
            chain = graph.path(entry, qual)
            if chain and (not best[1] or len(chain) < len(best[1])):
                best = (entry, chain)
        entry, chain = best
        rendered = " -> ".join(q.split("::", 1)[1] for q in chain)
        return entry, rendered

    # -- write classification ---------------------------------------------

    def _shared_writes(
        self,
        module: ModuleInfo,
        fn: FunctionInfo,
        graph,
        entry: Tuple[str, str],
    ) -> Iterator[Diagnostic]:
        entry_qual, chain = entry
        spawn = graph.table.functions.get(entry_qual)
        via = f" (worker-reachable via {chain})" if chain else ""
        module_globals = graph.table.module_globals.get(fn.relpath, set())
        for node, guarded in _guarded_nodes(fn.node):
            if guarded:
                continue
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in fn.globals_declared:
                        yield self.diag(
                            module, node.lineno,
                            f"write to module global {target.id!r} from "
                            f"worker-reachable code{via}; guard it with a "
                            f"lock or confine it to the coordinator thread",
                        )
                    continue
                base = _attribute_base(target)
                if base is None:
                    continue
                root, dotted = base
                if root == "self" and fn.name in ("__init__", "__new__"):
                    continue  # the object under construction is unshared
                if root == "self" and fn.cls is not None:
                    yield self.diag(
                        module, node.lineno,
                        f"unguarded write to shared attribute {dotted} of "
                        f"{fn.cls.name} from worker-reachable code{via}; "
                        f"workers race on instance state - hold a lock or "
                        f"move the write to the coordinator",
                    )
                elif root in fn.params and root != "self":
                    yield self.diag(
                        module, node.lineno,
                        f"unguarded write to {dotted}: parameter {root!r} "
                        f"is an object handed into worker-reachable "
                        f"code{via} and may be shared across workers; lock "
                        f"it, or suppress with a justification when it is "
                        f"provably task-local",
                    )
                elif (
                    root in module_globals
                    and root not in fn.assigned
                    and root not in fn.params
                ):
                    yield self.diag(
                        module, node.lineno,
                        f"unguarded write to {dotted}: {root!r} is a module "
                        f"global mutated from worker-reachable code{via}",
                    )
