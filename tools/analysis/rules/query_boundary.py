"""Rule ``query-boundary``: the query layer reads through the scanner.

Physical operators account every seek and page transfer to both the
query's cost tracker and their own, which only works when all block and
tuple reads flow through a :class:`repro.storage.scan.StoreScanner`
(``self.scanner`` on leaf operators).  A direct ``store.read_block(...)``
bypasses the per-operator trackers and silently breaks EXPLAIN ANALYZE's
invariant that operator costs sum to the query total.

Ported from ``tools/lint_query_boundaries.py`` (PR 3), which is now a
thin shim over this rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .. import policy
from ..core import Diagnostic, ModuleInfo, Rule, register


def _terminal_name(node: ast.expr) -> str:
    """The last identifier of a dotted receiver (``self.x.scanner`` -> ``scanner``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def scan_tree(tree: ast.AST, path: str, rule_id: str) -> List[Diagnostic]:
    """All boundary violations in one parsed module."""
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        receiver = _terminal_name(node.value)
        if node.attr in policy.IO_METHODS and receiver not in policy.SCANNER_NAMES:
            out.append(Diagnostic(
                path, node.lineno, rule_id,
                f"query code calls .{node.attr}() on "
                f"{receiver or 'an expression'!r} - route storage I/O "
                f"through store.scanner(...) so per-operator cost trackers "
                f"see it",
            ))
        elif (
            node.attr.startswith("_")
            and not node.attr.startswith("__")
            and receiver in policy.STORE_NAMES
        ):
            out.append(Diagnostic(
                path, node.lineno, rule_id,
                f"query code touches private BlockStore attribute "
                f".{node.attr} - use the public scan/cost interface",
            ))
    return out


@register
class QueryBoundaryRule(Rule):
    id = "query-boundary"
    description = "query-layer storage I/O goes through StoreScanner"
    scope = policy.QUERY_SCOPE

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        return scan_tree(module.tree, str(module.path), self.id)
